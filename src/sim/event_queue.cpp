#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace nimcast::sim {

EventId EventQueue::schedule(Time when, Callback cb) {
  assert(cb && "scheduling an empty callback");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq});
  callbacks_.emplace(seq, std::move(cb));
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) { return callbacks_.erase(id.seq) > 0; }

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  skip_cancelled();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty() && "pop() on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.seq);
  Fired fired{top.time, std::move(it->second)};
  callbacks_.erase(it);
  return fired;
}

}  // namespace nimcast::sim
