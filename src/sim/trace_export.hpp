#pragma once

#include <string>

#include "sim/trace.hpp"

namespace nimcast::sim {

/// Renders a Trace as Chrome Trace Event Format JSON (the `chrome://
/// tracing` / Perfetto "JSON array" flavour): one instant event per
/// record, with the entity id mapped to the thread lane and the category
/// preserved. Load the output in ui.perfetto.dev to scrub through a
/// multicast visually.
[[nodiscard]] std::string to_chrome_trace_json(const Trace& trace);

/// Writes the JSON next to the given path. Throws on I/O failure.
void write_chrome_trace(const Trace& trace, const std::string& path);

}  // namespace nimcast::sim
