#include "sim/simulator.hpp"

#include <utility>

namespace nimcast::sim {

void Simulator::throw_past_schedule(Time when) const {
  throw std::logic_error("Simulator::schedule_at: time " + when.to_string() +
                         " is in the past (now=" + now_.to_string() + ")");
}

std::uint64_t Simulator::run(std::uint64_t event_limit) {
  std::uint64_t fired = 0;
  while (!queue_.empty()) {
    auto ev = queue_.pop();
    begin_dispatch(ev);
    if (++fired > event_limit) {
      throw std::runtime_error("Simulator::run: event limit exceeded");
    }
    ev.cb();
    end_dispatch();
  }
  return fired;
}

std::uint64_t Simulator::run_until(Time until, std::uint64_t event_limit) {
  std::uint64_t fired = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto ev = queue_.pop();
    begin_dispatch(ev);
    if (++fired > event_limit) {
      throw std::runtime_error("Simulator::run_until: event limit exceeded");
    }
    ev.cb();
    end_dispatch();
  }
  if (until > now_) now_ = until;
  return fired;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto ev = queue_.pop();
  begin_dispatch(ev);
  ev.cb();
  end_dispatch();
  return true;
}

}  // namespace nimcast::sim
