#pragma once

#include <cstdint>
#include <vector>

namespace nimcast::sim {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64).
///
/// Every random choice an experiment makes — topology wiring, destination
/// sets, tie-breaks — flows through an Rng seeded from the experiment
/// configuration, so a run is reproducible bit-for-bit from its seed. We do
/// not use std::mt19937/std::uniform_int_distribution because their output
/// streams are not guaranteed identical across standard library
/// implementations.
/// Stateless 64-bit mixer (SplitMix64 finalizer). Feed it a running hash
/// to fold independent key components into one well-distributed word:
/// `hash_mix(h ^ component)`.
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Maps a hash word to a uniform double in [0, 1) — the stateless
/// counterpart of Rng::next_double(). Decisions derived this way are pure
/// functions of their key (no draw-order dependence), which is what lets
/// the sharded engine evaluate them on any shard in any window.
[[nodiscard]] constexpr double hash_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability `p` (clamped to [0,1]).
  bool next_bool(double p);

  /// Derives an independent child generator; used to give each repetition
  /// of a sweep its own stream so adding repetitions never perturbs
  /// earlier ones.
  [[nodiscard]] Rng fork();

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Draws `k` distinct elements from [0, n) in random order
  /// (partial Fisher-Yates). Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace nimcast::sim
