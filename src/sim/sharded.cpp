#include "sim/sharded.hpp"

#include <algorithm>
#include <barrier>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace nimcast::sim {

ShardedSimulator::ShardedSimulator(int num_shards, Time lookahead)
    : lookahead_{lookahead} {
  if (num_shards < 1) {
    throw std::invalid_argument("ShardedSimulator: num_shards < 1");
  }
  if (lookahead <= Time::zero()) {
    throw std::invalid_argument("ShardedSimulator: lookahead must be > 0");
  }
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    auto cell = std::make_unique<Cell>();
    cell->sim.enable_shard_order();
    cell->sim.set_schedule_context(&ctx_);
    shards_.push_back(std::move(cell));
  }
  win_records_.resize(static_cast<std::size_t>(num_shards));
  win_ordinals_.resize(static_cast<std::size_t>(num_shards));
}

std::size_t ShardedSimulator::checked(int s) const {
  if (s < 0 || s >= num_shards()) {
    throw std::out_of_range("ShardedSimulator: shard index out of range");
  }
  return static_cast<std::size_t>(s);
}

void ShardedSimulator::post(int from, int to, Time when,
                            std::function<void()> fn, EventId* bind_slot) {
  static_cast<void>(checked(to));
  Cell& cell = *shards_[checked(from)];
  const Simulator::PostKey key = cell.sim.alloc_post_key();
  cell.outbox.push_back(
      Mail{to, when, key.hi, key.lo, key.provisional, std::move(fn),
           bind_slot});
}

void ShardedSimulator::schedule_global(Time at, std::function<void()> fn) {
  // hi = 0 sorts registration-keyed globals (faults) ahead of any
  // hop-replay global at the same instant — matching the serial engine,
  // where fault events were scheduled at construction with the lowest
  // insertion order.
  schedule_global_keyed(at, 0, global_seq_++, std::move(fn));
}

void ShardedSimulator::schedule_global_keyed(Time at, std::uint64_t hi,
                                             std::uint64_t lo,
                                             std::function<void()> fn) {
  const std::lock_guard lock{globals_mutex_};
  globals_.push_back(GlobalEvent{at, hi, lo, std::move(fn)});
}

void ShardedSimulator::flush_outboxes() {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Cell& cell = *shards_[s];
    for (Mail& m : cell.outbox) {
      // The conservative contract: mail must land strictly after the
      // last window any shard has executed, or the receiver may already
      // have dispatched past it.
      if (m.when <= ran_through_) {
        throw std::logic_error(
            "ShardedSimulator: cross-shard post violates lookahead");
      }
      // Mail posted during the just-closed window carries a provisional
      // lineage key; the sender's ordinal table (finalize_window) is
      // live until the next barrier.
      const std::uint64_t lo = m.provisional ? resolve_lo(s, m.lo) : m.lo;
      const EventId id = shards_[static_cast<std::size_t>(m.to)]
                             ->sim.schedule_at_keyed(m.when, m.hi, lo,
                                                     std::move(m.fn));
      if (m.bind_slot != nullptr) *m.bind_slot = id;
    }
    cell.outbox.clear();
  }
}

std::uint64_t ShardedSimulator::resolve_lo(std::size_t s,
                                           std::uint64_t lo) const {
  if ((lo & Simulator::kProvisionalBit) == 0) return lo;
  const std::uint64_t parent =
      (lo & ~Simulator::kProvisionalBit) >> Simulator::kCallIdxBits;
  return (win_ordinals_[s][parent] << Simulator::kCallIdxBits) |
         (lo & Simulator::kCallIdxMask);
}

void ShardedSimulator::finalize_window() {
  const std::size_t S = shards_.size();
  bool any = false;
  for (std::size_t s = 0; s < S; ++s) {
    shards_[s]->sim.drain_window_records(win_records_[s]);
    win_ordinals_[s].assign(win_records_[s].size(), 0);
    any = any || !win_records_[s].empty();
  }
  if (!any) return;
  // K-way merge of the per-shard dispatch streams by firing key. Each
  // stream is already internally ordered (it *is* that shard's dispatch
  // order), and a record's final lineage key is computable the moment it
  // reaches the head of its stream: a provisional key's parent is an
  // earlier dispatch of the same shard and window, so its ordinal is
  // already assigned. The merged position is the event's global dispatch
  // ordinal — the serial engine's dispatch sequence number.
  std::vector<std::size_t> cur(S, 0);
  for (;;) {
    std::size_t best = S;
    Time bt{};
    std::uint64_t bhi = 0;
    std::uint64_t blo = 0;
    for (std::size_t s = 0; s < S; ++s) {
      if (cur[s] >= win_records_[s].size()) continue;
      const Simulator::DispatchRecord& r = win_records_[s][cur[s]];
      const std::uint64_t lo = resolve_lo(s, r.lo);
      if (best == S || r.time < bt ||
          (r.time == bt && (r.hi < bhi || (r.hi == bhi && lo < blo)))) {
        best = s;
        bt = r.time;
        bhi = r.hi;
        blo = lo;
      }
    }
    if (best == S) break;
    win_ordinals_[best][cur[best]++] = ctx_.next_ordinal++;
  }
  // Every event scheduled during the window that is still pending (or
  // parked in an outbox — flush_outboxes handles those) now gets its
  // final key; the serial tie-break is fully reconstructed before any
  // shard runs again.
  for (std::size_t s = 0; s < S; ++s) {
    shards_[s]->sim.rekey_provisional(
        [this, s](std::uint64_t lo) { return resolve_lo(s, lo); });
  }
}

std::uint64_t ShardedSimulator::total_dispatched() const {
  std::uint64_t total = 0;
  for (const auto& cell : shards_) total += cell->sim.events_dispatched();
  return total;
}

void ShardedSimulator::sort_pending_globals() {
  // Orders the not-yet-fired globals. Runs single-threaded (barrier
  // completion), but appends from the just-finished window still need
  // the fence the mutex provides. Re-run after every global fires: a
  // barrier-phase callback may register further keyed globals.
  const std::lock_guard lock{globals_mutex_};
  std::sort(globals_.begin() + static_cast<std::ptrdiff_t>(next_global_),
            globals_.end(), [](const GlobalEvent& a, const GlobalEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.hi != b.hi) return a.hi < b.hi;
              return a.lo < b.lo;
            });
}

bool ShardedSimulator::plan_window(Time& window_end) {
  finalize_window();
  flush_outboxes();
  for (;;) {
    sort_pending_globals();
    Time next = Time::max();
    for (const auto& cell : shards_) {
      if (!cell->sim.idle()) {
        next = std::min(next, cell->sim.next_event_time());
      }
    }
    const Time global_at = next_global_ < globals_.size()
                               ? globals_[next_global_].at
                               : Time::max();
    if (global_at <= next && global_at != Time::max()) {
      // Serial equivalence: fault events were scheduled at construction
      // (lowest insertion order), so they fire before any runtime event
      // at the same instant — here, before the window that would run
      // those events.
      for (auto& cell : shards_) cell->sim.advance_to(global_at);
      // The global is a dispatch in its own right: give it the next
      // ordinal and pin the shared context so its schedule calls get
      // final lineage keys (parent = this global, in call order).
      ctx_.per_call = false;
      ctx_.pinned_ordinal = ctx_.next_ordinal++;
      ctx_.idx = 0;
      globals_[next_global_].fn();
      ctx_.per_call = true;
      ++next_global_;
      ++globals_fired_;
      last_global_ = std::max(last_global_, global_at);
      flush_outboxes();
      continue;
    }
    if (next == Time::max()) return false;  // quiescent, no globals left
    // Window [next, next + lookahead): run_until is inclusive, so end one
    // tick short; clamp at the next global event the same way.
    Time end = next + lookahead_;
    if (global_at < end) end = global_at;
    window_end = end - Time::ns(1);
    ran_through_ = window_end;
    return true;
  }
}

std::uint64_t ShardedSimulator::run(int threads, std::uint64_t event_limit) {
  const int S = num_shards();
  threads = std::clamp(threads, 1, S);
  const std::uint64_t start_dispatched = total_dispatched();

  struct Control {
    Time window_end{};
    bool done = false;
    std::exception_ptr error;
    std::mutex error_mutex;
  } ctl;

  auto note_error = [&ctl]() noexcept {
    std::lock_guard lock{ctl.error_mutex};
    if (!ctl.error) ctl.error = std::current_exception();
  };

  // Barrier completion: the single-threaded inter-window step. Must not
  // throw (std::barrier would terminate); errors park in ctl and stop
  // the loop.
  auto on_barrier = [&]() noexcept {
    if (ctl.done) return;
    try {
      if (ctl.error != nullptr ||
          total_dispatched() - start_dispatched > event_limit) {
        if (ctl.error == nullptr) {
          throw std::runtime_error(
              "ShardedSimulator::run: event limit exceeded");
        }
        ctl.done = true;
        return;
      }
      ctl.done = !plan_window(ctl.window_end);
    } catch (...) {
      note_error();
      ctl.done = true;
    }
  };
  std::barrier bar{threads, on_barrier};

  // Thread i executes the contiguous shard block [lo, hi): with threads
  // == num_shards that is exactly one shard per thread.
  auto worker = [&](int i) {
    const int lo = i * S / threads;
    const int hi = (i + 1) * S / threads;
    for (;;) {
      bar.arrive_and_wait();  // completion plans the next window
      if (ctl.done) return;
      try {
        for (int s = lo; s < hi; ++s) {
          shards_[static_cast<std::size_t>(s)]->sim.run_until(
              ctl.window_end, event_limit);
        }
      } catch (...) {
        note_error();
      }
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(threads - 1));
    for (int i = 1; i < threads; ++i) pool.emplace_back(worker, i);
    worker(0);
  }  // jthreads join here

  if (ctl.error) std::rethrow_exception(ctl.error);
  return total_dispatched() - start_dispatched;
}

std::uint64_t ShardedSimulator::events_dispatched() const {
  std::uint64_t total = globals_fired_;
  for (const auto& cell : shards_) {
    total += cell->sim.events_dispatched();
    total -= cell->synthetic;
  }
  return total;
}

Time ShardedSimulator::last_event_time() const {
  Time latest = last_global_;
  for (const auto& cell : shards_) {
    latest = std::max(latest, cell->sim.last_event_time());
  }
  return latest;
}

}  // namespace nimcast::sim
