#include "sim/sharded.hpp"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace nimcast::sim {

namespace {
/// Below this many merged dispatches the ordinal tables are not worth
/// trimming; above it, trim once they dwarf the pending population.
constexpr std::uint64_t kCompactMinEntries = 1u << 16;
}  // namespace

ShardedSimulator::ShardedSimulator(int num_shards, Time lookahead)
    : lookahead_{lookahead} {
  if (num_shards < 1) {
    throw std::invalid_argument("ShardedSimulator: num_shards < 1");
  }
  if (lookahead <= Time::zero()) {
    throw std::invalid_argument("ShardedSimulator: lookahead must be > 0");
  }
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    auto cell = std::make_unique<Cell>();
    cell->sim.enable_shard_order();
    cell->sim.set_schedule_context(&ctx_);
    shards_.push_back(std::move(cell));
  }
  const auto S = static_cast<std::size_t>(num_shards);
  ord_table_.resize(S);
  ord_base_.assign(S, 0);
  mail_keys_.resize(S);
  // The double-buffered exchange: one batch fills at the barrier while
  // the merge worker consumes the other.
  for (int i = 0; i < 2; ++i) {
    Batch b;
    b.recs.resize(S);
    free_batches_.push_back(std::move(b));
  }
  if (const char* eager = std::getenv("NIMCAST_EAGER_MERGE");
      eager != nullptr && eager[0] != '\0' &&
      !(eager[0] == '0' && eager[1] == '\0')) {
    eager_merge_ = true;
  }
}

ShardedSimulator::~ShardedSimulator() = default;

std::size_t ShardedSimulator::checked(int s) const {
  if (s < 0 || s >= num_shards()) {
    throw std::out_of_range("ShardedSimulator: shard index out of range");
  }
  return static_cast<std::size_t>(s);
}

void ShardedSimulator::post(int from, int to, Time when,
                            std::function<void()> fn, EventId* bind_slot) {
  static_cast<void>(checked(to));
  Cell& cell = *shards_[checked(from)];
  const Simulator::PostKey key = cell.sim.alloc_post_key();
  cell.outbox.push_back(
      Mail{to, when, key.hi, key.lo, key.provisional, std::move(fn),
           bind_slot});
}

void ShardedSimulator::schedule_global(Time at, std::function<void()> fn) {
  // hi = 0 sorts registration-keyed globals (faults) ahead of any
  // hop-replay global at the same instant — matching the serial engine,
  // where fault events were scheduled at construction with the lowest
  // insertion order.
  schedule_global_keyed(at, 0, global_seq_++, std::move(fn));
}

void ShardedSimulator::schedule_global_keyed(Time at, std::uint64_t hi,
                                             std::uint64_t lo,
                                             std::function<void()> fn) {
  const std::lock_guard lock{globals_mutex_};
  globals_.push_back(GlobalEvent{at, hi, lo, std::move(fn)});
}

void ShardedSimulator::flush_outboxes() {
  for (auto& keys : mail_keys_) keys.clear();
  bool any_provisional = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Cell& cell = *shards_[s];
    for (Mail& m : cell.outbox) {
      // The conservative contract: mail must land strictly after the
      // last window any shard has executed, or the receiver may already
      // have dispatched past it.
      if (m.when <= ran_through_) {
        throw std::logic_error(
            "ShardedSimulator: cross-shard post violates lookahead");
      }
      // Mail posted during the just-closed window carries a provisional
      // lineage key; the merge worker has assigned the window's ordinals
      // by the time the flush runs (plan_window joins first).
      std::uint64_t lo = m.lo;
      if (m.provisional) {
        lo = resolve_lo(s, m.lo);
        mail_keys_[static_cast<std::size_t>(m.to)].emplace_back(m.when, m.hi);
        any_provisional = true;
      }
      const EventId id = shards_[static_cast<std::size_t>(m.to)]
                             ->sim.schedule_at_keyed(m.when, m.hi, lo,
                                                     std::move(m.fn));
      if (m.bind_slot != nullptr) *m.bind_slot = id;
    }
    cell.outbox.clear();
  }
  if (!any_provisional) return;
  // A mailed event can tie a still-provisional local key at the same
  // (time, hi): both schedule calls happened at the same instant, in the
  // window just closed, so the local key's parent ordinal is known —
  // finalize exactly the tying keys so the receiver's heap compares them
  // against the mailed final key in true serial order. Everything else
  // stays provisional (order-correct locally) until a compaction.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto& keys = mail_keys_[s];
    if (keys.empty()) continue;
    shards_[s]->sim.rekey_provisional_if(
        [&keys](Time t, std::uint64_t hi) {
          for (const auto& k : keys) {
            if (k.first == t && k.second == hi) return true;
          }
          return false;
        },
        [this, s](std::uint64_t lo) { return resolve_lo(s, lo); });
  }
}

std::uint64_t ShardedSimulator::resolve_lo(std::size_t s,
                                           std::uint64_t lo) const {
  if ((lo & Simulator::kProvisionalBit) == 0) return lo;
  const std::uint64_t parent =
      (lo & ~Simulator::kProvisionalBit) >> Simulator::kCallIdxBits;
  assert(parent >= ord_base_[s] &&
         parent - ord_base_[s] < ord_table_[s].size());
  return (ord_table_[s][parent - ord_base_[s]] << Simulator::kCallIdxBits) |
         (lo & Simulator::kCallIdxMask);
}

void ShardedSimulator::publish_window() {
  Batch b;
  {
    std::unique_lock lk{merge_mutex_};
    // Double-buffer backpressure: wait for the worker to recycle a batch
    // if both are in flight.
    merge_done_cv_.wait(lk, [this] { return !free_batches_.empty(); });
    b = std::move(free_batches_.back());
    free_batches_.pop_back();
  }
  bool any = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->sim.drain_window_records(b.recs[s]);
    any = any || !b.recs[s].empty();
  }
  if (!any) {
    const std::lock_guard lk{merge_mutex_};
    free_batches_.push_back(std::move(b));
    return;
  }
  {
    const std::lock_guard lk{merge_mutex_};
    merge_queue_.push_back(std::move(b));
  }
  merge_cv_.notify_one();
}

void ShardedSimulator::join_merges() {
  std::unique_lock lk{merge_mutex_};
  merge_done_cv_.wait(
      lk, [this] { return merge_queue_.empty() && !merge_busy_; });
  if (merge_error_ != nullptr) {
    const std::exception_ptr e = merge_error_;
    merge_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ShardedSimulator::merge_batch(const Batch& b) {
  // K-way merge of the per-shard dispatch streams by firing key. Each
  // stream is already internally ordered (it *is* that shard's dispatch
  // order), and a record's final lineage key is computable the moment it
  // reaches the head of its stream: a provisional key's parent is an
  // earlier dispatch of the same shard, so its ordinal is already in the
  // table. The merged position is the event's global dispatch ordinal —
  // the serial engine's dispatch sequence number.
  const std::size_t S = shards_.size();
  struct Head {
    std::size_t cur = 0;
    Time time{};
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    bool live = false;
  };
  std::vector<Head> heads(S);
  auto load = [&](std::size_t s) {
    Head& h = heads[s];
    h.live = h.cur < b.recs[s].size();
    if (!h.live) return;
    const Simulator::DispatchRecord& r = b.recs[s][h.cur];
    h.time = r.time;
    h.hi = r.hi;
    h.lo = resolve_lo(s, r.lo);
  };
  for (std::size_t s = 0; s < S; ++s) load(s);
  for (;;) {
    std::size_t best = S;
    for (std::size_t s = 0; s < S; ++s) {
      const Head& h = heads[s];
      if (!h.live) continue;
      if (best == S || h.time < heads[best].time ||
          (h.time == heads[best].time &&
           (h.hi < heads[best].hi ||
            (h.hi == heads[best].hi && h.lo < heads[best].lo)))) {
        best = s;
      }
    }
    if (best == S) break;
    ord_table_[best].push_back(ctx_.next_ordinal++);
    ++heads[best].cur;
    load(best);
  }
}

void ShardedSimulator::merge_worker() {
  std::unique_lock lk{merge_mutex_};
  for (;;) {
    merge_cv_.wait(lk,
                   [this] { return merge_stop_ || !merge_queue_.empty(); });
    if (merge_queue_.empty()) return;  // stop requested and fully drained
    Batch b = std::move(merge_queue_.front());
    merge_queue_.pop_front();
    merge_busy_ = true;
    lk.unlock();
    std::uint64_t produced = 0;
    try {
      for (const auto& r : b.recs) produced += r.size();
      merge_batch(b);
    } catch (...) {
      lk.lock();
      if (merge_error_ == nullptr) merge_error_ = std::current_exception();
      lk.unlock();
    }
    for (auto& r : b.recs) r.clear();
    lk.lock();
    merged_entries_ += produced;
    merge_busy_ = false;
    free_batches_.push_back(std::move(b));
    merge_done_cv_.notify_all();
  }
}

void ShardedSimulator::compact_tables() {
  // Requires: merges joined (tables complete, worker idle), outboxes
  // empty. Afterwards every pending key is final, so the tables can be
  // dropped and between-run schedule calls (which allocate final keys)
  // compare correctly against everything still pending.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (ord_table_[s].empty()) continue;
    shards_[s]->sim.rekey_provisional(
        [this, s](std::uint64_t lo) { return resolve_lo(s, lo); });
    ord_base_[s] += ord_table_[s].size();
    ord_table_[s].clear();
  }
}

void ShardedSimulator::maybe_compact() {
  std::uint64_t merged;
  {
    const std::lock_guard lk{merge_mutex_};
    merged = merged_entries_;
  }
  if (merged < kCompactMinEntries) return;
  std::uint64_t pending = 0;
  for (const auto& cell : shards_) pending += cell->sim.pending_events();
  if (merged < 8 * pending) return;
  join_merges();
  compact_tables();
  const std::lock_guard lk{merge_mutex_};
  merged_entries_ = 0;
}

std::uint64_t ShardedSimulator::total_dispatched() const {
  std::uint64_t total = 0;
  for (const auto& cell : shards_) total += cell->sim.events_dispatched();
  return total;
}

void ShardedSimulator::sort_pending_globals() {
  // Orders the not-yet-fired globals. Runs single-threaded (barrier
  // completion), but appends from the just-finished window still need
  // the fence the mutex provides. Re-run after every global fires: a
  // barrier-phase callback may register further keyed globals.
  const std::lock_guard lock{globals_mutex_};
  std::sort(globals_.begin() + static_cast<std::ptrdiff_t>(next_global_),
            globals_.end(), [](const GlobalEvent& a, const GlobalEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.hi != b.hi) return a.hi < b.hi;
              return a.lo < b.lo;
            });
}

bool ShardedSimulator::plan_window(Time& window_end) {
  publish_window();
  if (eager_merge_) join_merges();
  bool mail_pending = false;
  for (const auto& cell : shards_) {
    if (!cell->outbox.empty()) {
      mail_pending = true;
      break;
    }
  }
  if (mail_pending) {
    // Mail finalization consumes the closed window's ordinals; this is
    // the only inter-window work that has to wait for the merge.
    join_merges();
    flush_outboxes();
  }
  for (;;) {
    sort_pending_globals();
    Time next = Time::max();
    for (const auto& cell : shards_) {
      if (!cell->sim.idle()) {
        next = std::min(next, cell->sim.next_event_time());
      }
    }
    const Time global_at = next_global_ < globals_.size()
                               ? globals_[next_global_].at
                               : Time::max();
    if (global_at <= next && global_at != Time::max()) {
      // Serial equivalence: fault events were scheduled at construction
      // (lowest insertion order), so they fire before any runtime event
      // at the same instant — here, before the window that would run
      // those events. The global is a dispatch in its own right: its
      // ordinal must follow every already-dispatched event's, so the
      // merge backlog is joined first.
      join_merges();
      for (auto& cell : shards_) cell->sim.advance_to(global_at);
      ctx_.per_call = false;
      ctx_.pinned_ordinal = ctx_.next_ordinal++;
      ctx_.idx = 0;
      globals_[next_global_].fn();
      ctx_.per_call = true;
      ++next_global_;
      ++globals_fired_;
      last_global_ = std::max(last_global_, global_at);
      flush_outboxes();
      continue;
    }
    if (next == Time::max()) return false;  // quiescent, no globals left
    // Window [next, next + lookahead): run_until is inclusive, so end one
    // tick short; clamp at the next global event the same way.
    Time end = next + lookahead_;
    if (global_at < end) end = global_at;
    window_end = end - Time::ns(1);
    ran_through_ = window_end;
    ++windows_planned_;
    maybe_compact();
    return true;
  }
}

std::uint64_t ShardedSimulator::run(int threads, std::uint64_t event_limit) {
  const int S = num_shards();
  threads = std::clamp(threads, 1, S);
  const std::uint64_t start_dispatched = total_dispatched();

  {
    const std::lock_guard lk{merge_mutex_};
    merge_stop_ = false;
  }
  std::thread merger{[this] { merge_worker(); }};

  struct Control {
    Time window_end{};
    bool done = false;
    std::exception_ptr error;
    std::mutex error_mutex;
  } ctl;

  auto note_error = [&ctl]() noexcept {
    const std::lock_guard lock{ctl.error_mutex};
    if (!ctl.error) ctl.error = std::current_exception();
  };

  // Barrier completion: the single-threaded inter-window step. Must not
  // throw (std::barrier would terminate); errors park in ctl and stop
  // the loop. Its wall time is the window-barrier cost the bench
  // reports — the quantity the overlapped merge shrinks.
  auto on_barrier = [&]() noexcept {
    if (ctl.done) return;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      if (ctl.error != nullptr ||
          total_dispatched() - start_dispatched > event_limit) {
        if (ctl.error == nullptr) {
          throw std::runtime_error(
              "ShardedSimulator::run: event limit exceeded");
        }
        ctl.done = true;
      } else {
        ctl.done = !plan_window(ctl.window_end);
      }
    } catch (...) {
      note_error();
      ctl.done = true;
    }
    barrier_wall_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };
  std::barrier bar{threads, on_barrier};

  // Thread i executes the contiguous shard block [lo, hi): with threads
  // == num_shards that is exactly one shard per thread.
  auto worker = [&](int i) {
    const int lo = i * S / threads;
    const int hi = (i + 1) * S / threads;
    for (;;) {
      bar.arrive_and_wait();  // completion plans the next window
      if (ctl.done) return;
      try {
        for (int s = lo; s < hi; ++s) {
          shards_[static_cast<std::size_t>(s)]->sim.run_until(
              ctl.window_end, event_limit);
        }
      } catch (...) {
        note_error();
      }
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(threads - 1));
    for (int i = 1; i < threads; ++i) pool.emplace_back(worker, i);
    worker(0);
  }  // jthreads join here

  // Drain and stop the merge worker, then finalize every pending key so
  // schedule calls made between runs compare correctly.
  {
    const std::lock_guard lk{merge_mutex_};
    merge_stop_ = true;
  }
  merge_cv_.notify_one();
  merger.join();
  {
    const std::lock_guard lk{merge_mutex_};
    if (merge_error_ != nullptr && ctl.error == nullptr) {
      ctl.error = merge_error_;
    }
    merge_error_ = nullptr;
  }
  if (ctl.error) std::rethrow_exception(ctl.error);
  compact_tables();
  {
    const std::lock_guard lk{merge_mutex_};
    merged_entries_ = 0;
  }
  return total_dispatched() - start_dispatched;
}

std::uint64_t ShardedSimulator::events_dispatched() const {
  std::uint64_t total = globals_fired_;
  for (const auto& cell : shards_) {
    total += cell->sim.events_dispatched();
    total -= cell->synthetic;
  }
  return total;
}

Time ShardedSimulator::last_event_time() const {
  Time latest = last_global_;
  for (const auto& cell : shards_) {
    latest = std::max(latest, cell->sim.last_event_time());
  }
  return latest;
}

}  // namespace nimcast::sim
