#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/sim_time.hpp"

namespace nimcast::sim {

/// Conservative time-window parallel driver over N `Simulator` shards.
///
/// Each shard owns its own event queue and is executed by at most one OS
/// thread at a time; shards synchronize at window barriers. The window
/// width is the `lookahead` — the minimum simulated latency of any
/// cross-shard interaction (for the wormhole network: one channel hop,
/// `t_hop`, or tighter when pipelined release needs it) — so events
/// dispatched inside a window can only create cross-shard events that
/// fire in a *later* window, and intra-window execution is lock-free.
///
/// Cross-shard interactions travel through per-shard outboxes (`post`)
/// that the barrier flushes into the target shards' queues, carrying the
/// *sender's* deterministic tie-break key — the same (schedule-time,
/// lineage) key every shard-order `Simulator` stamps on its local
/// events. The driver reconstructs the serial engine's insertion-counter
/// order exactly, but keeps the reconstruction off the critical path:
/// each closed window's per-shard dispatch records are published into a
/// double-buffered exchange consumed by a dedicated merge worker, which
/// k-way-merges them by firing key into the global dispatch sequence and
/// appends each shard's ordinals to an ever-growing per-shard ordinal
/// table. Because per-shard dispatch indices are cumulative, a pending
/// provisional key is already order-correct against every key it can tie
/// locally, so no per-window heap rewrite is needed; keys are finalized
/// lazily — at mail flush (tying keys only), at amortized table
/// compactions, and once at run() exit. The single-threaded inter-window
/// phase joins the merge worker only when something actually consumes
/// ordinals: outgoing mail, a due global event, or a compaction.
/// Dispatch order is therefore bit-identical to the serial `Simulator`'s
/// and independent of thread count and OS scheduling. See docs/perf.md
/// ("Sharded engine").
///
/// Globally-ordered actions that must see all shards at one instant
/// (fault injection) register via `schedule_global`; they run
/// single-threaded at a barrier with every shard clock advanced to
/// exactly the event time and every outbox flushed.
class ShardedSimulator {
 public:
  /// `lookahead` must be positive; every post() must target a time at
  /// least `lookahead` after the sender's current time.
  ShardedSimulator(int num_shards, Time lookahead);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] int num_shards() const {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] Simulator& shard(int s) { return shards_[checked(s)]->sim; }
  [[nodiscard]] const Simulator& shard(int s) const {
    return shards_[checked(s)]->sim;
  }
  [[nodiscard]] Time lookahead() const { return lookahead_; }

  /// Mails `fn` from shard `from` to shard `to`, to fire at `when`. The
  /// sender's tie-break key is captured here, at post() time, so the
  /// mailed event interleaves with the sender's local schedule calls in
  /// call order; a provisional key is finalized when the flush runs,
  /// after the merge worker has assigned the closed window's ordinals.
  /// Safe to call from `from`'s worker thread during a window, or from
  /// the driver thread outside run(). `when` must be at least
  /// lookahead() past shard `from`'s current time (checked at flush). If
  /// `bind_slot` is non-null the EventId the flush creates is stored
  /// through it — the receiver-side cancellation handle; the slot must
  /// stay valid until the next barrier.
  void post(int from, int to, Time when, std::function<void()> fn,
            EventId* bind_slot = nullptr);

  /// Registers a single-threaded barrier-phase event (fault injection).
  /// At time `at`, every shard's clock is advanced to exactly `at`, all
  /// outboxes are flushed, and `fn` runs alone with mutable access to
  /// every shard. Events at equal times run in registration order, before
  /// any shard-local event at the same instant.
  void schedule_global(Time at, std::function<void()> fn);

  /// Keyed variant, safe to call from worker threads mid-window: equal
  /// times order by (hi, lo) — registration-keyed globals (hi = 0) first.
  /// The wormhole network uses this to replay a hop that would land on a
  /// fault-condemned channel: the resulting worm teardown touches channel
  /// state on several shards, so it must run in the single-threaded
  /// barrier phase, at the exact simulated instant the serial engine
  /// would have run it. `at` must be at least lookahead() past the
  /// calling shard's current time.
  void schedule_global_keyed(Time at, std::uint64_t hi, std::uint64_t lo,
                             std::function<void()> fn);

  /// Counts one dispatched event on `shard` as synthetic: it exists only
  /// because of the sharding (a mailed channel release that the serial
  /// engine performs inline) and is excluded from events_dispatched().
  void note_synthetic(int shard) { ++shards_[checked(shard)]->synthetic; }

  /// Runs every shard to global quiescence — queues and outboxes empty,
  /// all global events fired — using `threads` OS threads (clamped to
  /// [1, num_shards]; the calling thread participates). Thread count
  /// never changes the dispatched event sequence, only the wall clock.
  /// Returns the number of (non-global) events dispatched by this call.
  std::uint64_t run(int threads,
                    std::uint64_t event_limit = Simulator::kDefaultEventLimit);

  /// Serial-equivalent logical event count: shard dispatches plus fired
  /// global events minus synthetic events.
  [[nodiscard]] std::uint64_t events_dispatched() const;

  /// Max over shards of the last dispatched event time, including fired
  /// global events (the serial engine dispatches those as ordinary
  /// events) — what the serial engine's now() reads after run() drains.
  [[nodiscard]] Time last_event_time() const;

  /// Bench/compat toggle: when true, the inter-window phase joins the
  /// merge worker at every barrier — restoring the PR 4 structure where
  /// the ordinal merge sits on the critical path — so the overlapped
  /// design's barrier-time win can be measured on the same machine. Also
  /// settable via the NIMCAST_EAGER_MERGE environment variable (any
  /// non-empty value other than "0").
  void set_eager_merge(bool on) { eager_merge_ = on; }
  [[nodiscard]] bool eager_merge() const { return eager_merge_; }

  /// Accumulated wall-clock nanoseconds the single-threaded inter-window
  /// phase has spent across run() calls (barrier completions: publish,
  /// joins, flushes, globals, window planning), and the number of
  /// windows planned. The pair is the bench's window-barrier metric.
  [[nodiscard]] std::uint64_t barrier_wall_ns() const {
    return barrier_wall_ns_;
  }
  [[nodiscard]] std::uint64_t windows_planned() const {
    return windows_planned_;
  }

 private:
  struct Mail {
    int to;
    Time when;
    std::uint64_t hi;
    std::uint64_t lo;
    bool provisional;  ///< lo still needs the merge worker's ordinal
    std::function<void()> fn;
    EventId* bind_slot;
  };
  /// Per-shard cell, heap-allocated so hot per-thread state (the
  /// simulator, the outbox) never false-shares across workers.
  struct Cell {
    Simulator sim;
    std::vector<Mail> outbox;
    std::uint64_t synthetic = 0;
  };
  struct GlobalEvent {
    Time at;
    std::uint64_t hi;
    std::uint64_t lo;
    std::function<void()> fn;
  };
  /// One closed window's per-shard dispatch records, in flight between
  /// the barrier (producer) and the merge worker (consumer). Two batches
  /// rotate through the exchange: the barrier publishes into one while
  /// the worker merges the other.
  struct Batch {
    std::vector<std::vector<Simulator::DispatchRecord>> recs;
  };

  [[nodiscard]] std::size_t checked(int s) const;
  void flush_outboxes();
  void sort_pending_globals();
  /// Single-threaded between windows: publishes the closed window's
  /// dispatch records to the merge worker, flushes mail, fires due
  /// global events, picks the next window. Returns false at global
  /// quiescence.
  bool plan_window(Time& window_end);
  /// Drains the closed window's per-shard dispatch records into a free
  /// batch and hands it to the merge worker (waits for a free batch if
  /// both are in flight — the double-buffer backpressure).
  void publish_window();
  /// Blocks until the merge worker has consumed every published batch;
  /// rethrows any merge-side error. After this, every published dispatch
  /// has its global ordinal in the per-shard tables.
  void join_merges();
  /// Merge worker body: k-way merge of one batch by firing key,
  /// appending global ordinals to the per-shard tables.
  void merge_batch(const Batch& b);
  void merge_worker();
  /// Amortized table trim: once the ordinal tables dwarf the pending
  /// event population, finalize every pending provisional key and drop
  /// the tables (advancing the per-shard bases). Also runs at run()
  /// exit so between-run schedule calls compare against final keys only.
  void compact_tables();
  void maybe_compact();
  /// Provisional lineage key -> final, via shard `s`'s cumulative
  /// ordinal table. Identity for keys that are already final. The
  /// caller must hold the table complete for the key's parent (merge
  /// joined past the parent's window).
  [[nodiscard]] std::uint64_t resolve_lo(std::size_t s,
                                         std::uint64_t lo) const;
  [[nodiscard]] std::uint64_t total_dispatched() const;

  std::vector<std::unique_ptr<Cell>> shards_;
  /// Shared final-lineage-key counters; installed into every shard's
  /// simulator. Touched by single-threaded phases and the merge worker,
  /// never both at once (join_merges orders them).
  Simulator::ScheduleContext ctx_;
  /// Cumulative per-shard ordinal tables: entry j - base is the global
  /// dispatch ordinal of shard s's (base + j)-th dispatch. Appended by
  /// the merge worker, read by single-threaded phases after a join.
  std::vector<std::vector<std::uint64_t>> ord_table_;
  std::vector<std::uint64_t> ord_base_;
  /// Merge exchange: published batches awaiting the worker, plus the
  /// recycled free list (two batches total).
  std::deque<Batch> merge_queue_;
  std::vector<Batch> free_batches_;
  /// Total ordinal-table entries since the last compaction (guarded by
  /// merge_mutex_ — the worker appends while windows run).
  std::uint64_t merged_entries_ = 0;
  bool merge_busy_ = false;
  bool merge_stop_ = false;
  std::exception_ptr merge_error_;
  std::mutex merge_mutex_;
  std::condition_variable merge_cv_;       ///< wakes the worker
  std::condition_variable merge_done_cv_;  ///< wakes join/publish waiters
  /// Consumed prefix [0, next_global_) is frozen; the live suffix is
  /// re-sorted by (at, hi, lo) each time the barrier looks at it, because
  /// workers may append keyed globals mid-window (guarded by
  /// globals_mutex_; the sort itself runs single-threaded).
  std::vector<GlobalEvent> globals_;
  std::mutex globals_mutex_;
  std::uint64_t global_seq_ = 0;  ///< registration order for unkeyed globals
  std::size_t next_global_ = 0;
  std::uint64_t globals_fired_ = 0;
  Time last_global_ = Time::zero();  ///< latest fired global event time
  Time lookahead_;
  /// Latest window end any shard has dispatched through; mail landing at
  /// or before it arrives too late (lookahead violation).
  Time ran_through_ = Time::ns(-1);
  bool eager_merge_ = false;
  std::uint64_t barrier_wall_ns_ = 0;
  std::uint64_t windows_planned_ = 0;
  /// Scratch for flush_outboxes: per-shard (time, hi) keys of inserted
  /// provisional mail, used to finalize tying local keys.
  std::vector<std::vector<std::pair<Time, std::uint64_t>>> mail_keys_;
};

}  // namespace nimcast::sim
