#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/sim_time.hpp"

namespace nimcast::sim {

/// Conservative time-window parallel driver over N `Simulator` shards.
///
/// Each shard owns its own event queue and is executed by at most one OS
/// thread at a time; shards synchronize at window barriers. The window
/// width is the `lookahead` — the minimum simulated latency of any
/// cross-shard interaction (for the wormhole network: one channel hop,
/// `t_hop`) — so events dispatched inside a window can only create
/// cross-shard events that fire in a *later* window, and intra-window
/// execution is lock-free.
///
/// Cross-shard interactions travel through per-shard outboxes (`post`)
/// that the barrier flushes into the target shards' queues, carrying the
/// *sender's* deterministic tie-break key — the same (schedule-time,
/// lineage) key every shard-order `Simulator` stamps on its local
/// events. At each barrier the driver reconstructs the serial engine's
/// insertion-counter order exactly: the closed window's per-shard
/// dispatch records are merged into one global sequence (a k-way merge
/// by firing key — final by construction, since cross-shard influence
/// needs at least one lookahead), each dispatch is assigned its global
/// ordinal, and every still-pending event scheduled during the window
/// has its provisional lineage key rewritten to
/// `(parent ordinal, schedule-call index)` — which is precisely how two
/// serial insertion counters compare. Dispatch order is therefore
/// bit-identical to the serial `Simulator`'s and independent of thread
/// count and OS scheduling. See docs/perf.md ("Sharded engine").
///
/// Globally-ordered actions that must see all shards at one instant
/// (fault injection) register via `schedule_global`; they run
/// single-threaded at a barrier with every shard clock advanced to
/// exactly the event time and every outbox flushed.
class ShardedSimulator {
 public:
  /// `lookahead` must be positive; every post() must target a time at
  /// least `lookahead` after the sender's current time.
  ShardedSimulator(int num_shards, Time lookahead);

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] int num_shards() const {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] Simulator& shard(int s) { return shards_[checked(s)]->sim; }
  [[nodiscard]] const Simulator& shard(int s) const {
    return shards_[checked(s)]->sim;
  }
  [[nodiscard]] Time lookahead() const { return lookahead_; }

  /// Mails `fn` from shard `from` to shard `to`, to fire at `when`. The
  /// sender's tie-break key is captured here, at post() time, so the
  /// mailed event interleaves with the sender's local schedule calls in
  /// call order; a provisional key is finalized when the flush runs,
  /// after the barrier's ordinal assignment. Safe to call from `from`'s
  /// worker thread during a window, or from the driver thread outside
  /// run(). `when` must be at least lookahead() past shard `from`'s
  /// current time (checked at flush). If `bind_slot` is non-null the
  /// EventId the flush creates is stored through it — the receiver-side
  /// cancellation handle; the slot must stay valid until the next
  /// barrier.
  void post(int from, int to, Time when, std::function<void()> fn,
            EventId* bind_slot = nullptr);

  /// Registers a single-threaded barrier-phase event (fault injection).
  /// At time `at`, every shard's clock is advanced to exactly `at`, all
  /// outboxes are flushed, and `fn` runs alone with mutable access to
  /// every shard. Events at equal times run in registration order, before
  /// any shard-local event at the same instant.
  void schedule_global(Time at, std::function<void()> fn);

  /// Keyed variant, safe to call from worker threads mid-window: equal
  /// times order by (hi, lo) — registration-keyed globals (hi = 0) first.
  /// The wormhole network uses this to replay a hop that would land on a
  /// fault-condemned channel: the resulting worm teardown touches channel
  /// state on several shards, so it must run in the single-threaded
  /// barrier phase, at the exact simulated instant the serial engine
  /// would have run it. `at` must be at least lookahead() past the
  /// calling shard's current time.
  void schedule_global_keyed(Time at, std::uint64_t hi, std::uint64_t lo,
                             std::function<void()> fn);

  /// Counts one dispatched event on `shard` as synthetic: it exists only
  /// because of the sharding (a mailed channel release that the serial
  /// engine performs inline) and is excluded from events_dispatched().
  void note_synthetic(int shard) { ++shards_[checked(shard)]->synthetic; }

  /// Runs every shard to global quiescence — queues and outboxes empty,
  /// all global events fired — using `threads` OS threads (clamped to
  /// [1, num_shards]; the calling thread participates). Thread count
  /// never changes the dispatched event sequence, only the wall clock.
  /// Returns the number of (non-global) events dispatched by this call.
  std::uint64_t run(int threads,
                    std::uint64_t event_limit = Simulator::kDefaultEventLimit);

  /// Serial-equivalent logical event count: shard dispatches plus fired
  /// global events minus synthetic events.
  [[nodiscard]] std::uint64_t events_dispatched() const;

  /// Max over shards of the last dispatched event time, including fired
  /// global events (the serial engine dispatches those as ordinary
  /// events) — what the serial engine's now() reads after run() drains.
  [[nodiscard]] Time last_event_time() const;

 private:
  struct Mail {
    int to;
    Time when;
    std::uint64_t hi;
    std::uint64_t lo;
    bool provisional;  ///< lo still needs the barrier's ordinal rewrite
    std::function<void()> fn;
    EventId* bind_slot;
  };
  /// Per-shard cell, heap-allocated so hot per-thread state (the
  /// simulator, the outbox) never false-shares across workers.
  struct Cell {
    Simulator sim;
    std::vector<Mail> outbox;
    std::uint64_t synthetic = 0;
  };
  struct GlobalEvent {
    Time at;
    std::uint64_t hi;
    std::uint64_t lo;
    std::function<void()> fn;
  };

  [[nodiscard]] std::size_t checked(int s) const;
  void flush_outboxes();
  void sort_pending_globals();
  /// Single-threaded between windows: finalizes the closed window's
  /// event order, flushes mail, fires due global events, picks the next
  /// window. Returns false at global quiescence.
  bool plan_window(Time& window_end);
  /// Drains the closed window's dispatch records, assigns each dispatch
  /// its global ordinal (k-way merge by firing key), and rewrites every
  /// pending provisional lineage key to its final form.
  void finalize_window();
  /// Provisional lineage key -> final, via shard `s`'s closed-window
  /// ordinal table. Identity for keys that are already final.
  [[nodiscard]] std::uint64_t resolve_lo(std::size_t s,
                                         std::uint64_t lo) const;
  [[nodiscard]] std::uint64_t total_dispatched() const;

  std::vector<std::unique_ptr<Cell>> shards_;
  /// Shared final-lineage-key counters; installed into every shard's
  /// simulator, touched only in single-threaded phases.
  Simulator::ScheduleContext ctx_;
  /// Per-shard scratch for the closed window: dispatch records and the
  /// global ordinal assigned to each (parallel vectors).
  std::vector<std::vector<Simulator::DispatchRecord>> win_records_;
  std::vector<std::vector<std::uint64_t>> win_ordinals_;
  /// Consumed prefix [0, next_global_) is frozen; the live suffix is
  /// re-sorted by (at, hi, lo) each time the barrier looks at it, because
  /// workers may append keyed globals mid-window (guarded by
  /// globals_mutex_; the sort itself runs single-threaded).
  std::vector<GlobalEvent> globals_;
  std::mutex globals_mutex_;
  std::uint64_t global_seq_ = 0;  ///< registration order for unkeyed globals
  std::size_t next_global_ = 0;
  std::uint64_t globals_fired_ = 0;
  Time last_global_ = Time::zero();  ///< latest fired global event time
  Time lookahead_;
  /// Latest window end any shard has dispatched through; mail landing at
  /// or before it arrives too late (lookahead violation).
  Time ran_through_ = Time::ns(-1);
};

}  // namespace nimcast::sim
