#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace nimcast::sim {

/// Simulated time.
///
/// Time is kept as an integral count of nanosecond ticks so that event
/// ordering is exact and runs are bit-for-bit reproducible; floating-point
/// accumulation error would make "who finished first" depend on summation
/// order. The paper's parameters (12.5 us host overhead, 3.0 / 2.0 us NI
/// overheads) are all exactly representable.
class Time {
 public:
  using rep = std::int64_t;

  constexpr Time() = default;

  /// Named constructors. `us()` accepts fractional microseconds (the paper
  /// quotes 12.5 us); the value is rounded to the nearest nanosecond.
  [[nodiscard]] static constexpr Time ns(rep v) { return Time{v}; }
  [[nodiscard]] static constexpr Time us(double v) {
    return Time{static_cast<rep>(v * 1000.0 + (v >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static constexpr Time ms(double v) { return us(v * 1000.0); }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<rep>::max()};
  }

  [[nodiscard]] constexpr rep count_ns() const { return ns_; }
  [[nodiscard]] constexpr double as_us() const {
    return static_cast<double>(ns_) / 1000.0;
  }
  [[nodiscard]] constexpr double as_ms() const {
    return static_cast<double>(ns_) / 1e6;
  }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }

  friend constexpr Time operator+(Time a, Time b) {
    return Time{a.ns_ + b.ns_};
  }
  friend constexpr Time operator-(Time a, Time b) {
    return Time{a.ns_ - b.ns_};
  }
  friend constexpr Time operator*(Time a, rep k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(rep k, Time a) { return Time{a.ns_ * k}; }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Time(rep v) : ns_{v} {}
  rep ns_ = 0;
};

}  // namespace nimcast::sim
