#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace nimcast::sim {

/// Streaming summary statistics (Welford's online algorithm for variance).
/// Used by the experiment harness to average multicast latency over the
/// paper's 30 destination sets x 10 topologies without storing every sample.
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; supports exact percentiles. Use when the sample
/// count is small (per-figure data points), not for per-event data.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Percentile by linear interpolation; `p` in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

/// Time-weighted occupancy integral: tracks a level (e.g. bytes buffered at
/// an NI) over simulated time and reports the peak and the time average.
/// This is how the Section 3.3.2 FCFS-vs-FPFS buffer comparison is measured.
class Occupancy {
 public:
  /// Records that the level changed by `delta` at time `t_us`. Times must
  /// be non-decreasing.
  void change(double t_us, double delta);

  [[nodiscard]] double level() const { return level_; }
  [[nodiscard]] double peak() const { return peak_; }
  /// Time-averaged level over [first_change, t_end_us].
  [[nodiscard]] double time_average(double t_end_us) const;
  /// Integral of level dt (microsecond * units).
  [[nodiscard]] double integral(double t_end_us) const;

 private:
  double level_ = 0.0;
  double peak_ = 0.0;
  double integral_ = 0.0;
  double last_t_ = 0.0;
  double first_t_ = 0.0;
  bool any_ = false;
};

}  // namespace nimcast::sim
