#include "sim/trace.hpp"

#include <sstream>
#include <utility>

namespace nimcast::sim {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kHost: return "host";
    case TraceCategory::kNi: return "ni";
    case TraceCategory::kChannel: return "chan";
    case TraceCategory::kPacket: return "pkt";
    case TraceCategory::kMulticast: return "mcast";
  }
  return "?";
}

void Trace::record(Time t, TraceCategory cat, std::int32_t entity,
                   std::string message) {
  if (!enabled_) return;
  records_.push_back(Record{t, cat, entity, std::move(message)});
}

std::vector<Trace::Record> Trace::filter(TraceCategory cat) const {
  std::vector<Record> out;
  for (const auto& r : records_) {
    if (r.category == cat) out.push_back(r);
  }
  return out;
}

std::string Trace::to_text() const {
  std::ostringstream os;
  for (const auto& r : records_) {
    os << r.time.to_string() << " [" << to_string(r.category) << "]";
    if (r.entity >= 0) os << " #" << r.entity;
    os << " " << r.message << "\n";
  }
  return os.str();
}

}  // namespace nimcast::sim
