#include "sim/event_pool.hpp"

#include <new>

namespace nimcast::sim {

EventPool::ChunkHeader* EventPool::carve(std::size_t chunk_bytes) {
  if (bump_left_ < chunk_bytes) {
    blocks_.push_back(std::make_unique<std::byte[]>(kBlockSize));
    bump_ = blocks_.back().get();
    bump_left_ = kBlockSize;
    bytes_reserved_ += kBlockSize;
  }
  auto* header = reinterpret_cast<ChunkHeader*>(bump_);
  bump_ += chunk_bytes;
  bump_left_ -= chunk_bytes;
  return header;
}

void* EventPool::allocate(std::size_t payload_size) {
  std::size_t cls = 0;
  while (cls < kNumClasses && class_payload(cls) < payload_size) ++cls;

  ChunkHeader* header;
  if (cls == kNumClasses) {
    // Larger than the biggest size class; a dedicated allocation is the
    // escape hatch (callbacks this large do not occur in the simulator).
    header = static_cast<ChunkHeader*>(
        ::operator new(kHeaderSize + payload_size, std::align_val_t{
                           alignof(std::max_align_t)}));
    header->size_class = kOversizeClass;
  } else if (free_lists_[cls] != nullptr) {
    header = free_lists_[cls];
    free_lists_[cls] = header->next;
    header->size_class = static_cast<std::uint32_t>(cls);
  } else {
    header = carve(kHeaderSize + class_payload(cls));
    header->size_class = static_cast<std::uint32_t>(cls);
  }
  header->pool = this;
  header->next = nullptr;
  return reinterpret_cast<std::byte*>(header) + kHeaderSize;
}

void EventPool::release(void* payload) noexcept {
  auto* header = reinterpret_cast<ChunkHeader*>(
      static_cast<std::byte*>(payload) - kHeaderSize);
  if (header->size_class == kOversizeClass) {
    ::operator delete(header, std::align_val_t{alignof(std::max_align_t)});
    return;
  }
  EventPool* pool = header->pool;
  header->next = pool->free_lists_[header->size_class];
  pool->free_lists_[header->size_class] = header;
}

}  // namespace nimcast::sim
