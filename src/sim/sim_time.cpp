#include "sim/sim_time.hpp"

#include <cstdio>

namespace nimcast::sim {

std::string Time::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3fus", as_us());
  return buf;
}

}  // namespace nimcast::sim
