#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nimcast::sim {

void Summary::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double d = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += d * nb / nt;
  m2_ += other.m2_ + d * d * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::mean() const {
  if (n_ == 0) throw std::logic_error("Summary::mean: no samples");
  return mean_;
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  if (n_ == 0) throw std::logic_error("Summary::min: no samples");
  return min_;
}

double Summary::max() const {
  if (n_ == 0) throw std::logic_error("Summary::max: no samples");
  return max_;
}

double Samples::mean() const {
  if (xs_.empty()) throw std::logic_error("Samples::mean: no samples");
  double s = 0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double Samples::percentile(double p) const {
  if (xs_.empty()) throw std::logic_error("Samples::percentile: no samples");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile out of [0,100]");
  }
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void Occupancy::change(double t_us, double delta) {
  if (any_ && t_us < last_t_) {
    throw std::logic_error("Occupancy::change: time went backwards");
  }
  if (!any_) {
    first_t_ = t_us;
    any_ = true;
  } else {
    integral_ += level_ * (t_us - last_t_);
  }
  last_t_ = t_us;
  level_ += delta;
  peak_ = std::max(peak_, level_);
}

double Occupancy::integral(double t_end_us) const {
  if (!any_) return 0.0;
  if (t_end_us < last_t_) {
    throw std::logic_error("Occupancy::integral: end before last change");
  }
  return integral_ + level_ * (t_end_us - last_t_);
}

double Occupancy::time_average(double t_end_us) const {
  if (!any_ || t_end_us <= first_t_) return 0.0;
  return integral(t_end_us) / (t_end_us - first_t_);
}

}  // namespace nimcast::sim
