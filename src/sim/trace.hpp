#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sim_time.hpp"

namespace nimcast::sim {

/// Trace event categories, used for filtering.
enum class TraceCategory : std::uint8_t {
  kHost,      ///< host processor activity (software start-up, receive)
  kNi,        ///< network interface coprocessor activity
  kChannel,   ///< wormhole channel acquire/release
  kPacket,    ///< packet lifecycle (injected, delivered, forwarded)
  kMulticast  ///< multicast-operation milestones
};

[[nodiscard]] const char* to_string(TraceCategory c);

/// In-memory event trace.
///
/// Collection is off by default so the hot path costs one branch. Tests and
/// the debugging examples enable it to assert on *sequences* of behaviour
/// (e.g. "FPFS forwarded packet 2 to every child before packet 3 to any"),
/// which end-state assertions cannot see.
class Trace {
 public:
  struct Record {
    Time time;
    TraceCategory category;
    std::int32_t entity;  ///< node / channel id, -1 when not applicable
    std::string message;
  };

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Time t, TraceCategory cat, std::int32_t entity,
              std::string message);

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// All records in a category, in time order (trace order == fire order).
  [[nodiscard]] std::vector<Record> filter(TraceCategory cat) const;

  /// Renders the trace as one line per record, for debugging and examples.
  [[nodiscard]] std::string to_text() const;

 private:
  bool enabled_ = false;
  std::vector<Record> records_;
};

}  // namespace nimcast::sim
