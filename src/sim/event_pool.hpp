#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace nimcast::sim {

/// Size-classed free-list arena for event callback overflow storage.
///
/// Callbacks too large for EventQueue's inline small-buffer go here instead
/// of the global heap: chunks are carved from large blocks, recycled through
/// per-class free lists, and only returned to the OS when the pool dies. In
/// the steady state of a simulation (schedule/fire/schedule/fire ...) every
/// allocation is a pointer pop.
///
/// Chunks remember their owning pool in a hidden header, so `release` is
/// static and callable from a callback object that was moved out of the
/// queue (EventQueue::pop hands the callback to the caller by value). The
/// pool must outlive every chunk it handed out; EventQueue guarantees this
/// by holding the pool behind a stable unique_ptr and never destroying it
/// while events are in flight. Not thread-safe: each simulator (and thus
/// each worker thread) owns its own pool.
class EventPool {
 public:
  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  /// Returns max_align_t-aligned storage for `payload_size` bytes.
  void* allocate(std::size_t payload_size);

  /// Returns a chunk obtained from `allocate` to its owning pool.
  static void release(void* payload) noexcept;

  /// Bytes currently carved into blocks (diagnostics / tests).
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct ChunkHeader {
    EventPool* pool;
    ChunkHeader* next;
    std::uint32_t size_class;
  };
  // Header is padded so payloads keep max_align_t alignment.
  static constexpr std::size_t kHeaderSize =
      (sizeof(ChunkHeader) + alignof(std::max_align_t) - 1) /
      alignof(std::max_align_t) * alignof(std::max_align_t);
  static constexpr std::size_t kMinPayload = 64;
  static constexpr std::size_t kNumClasses = 8;  // 64 B .. 8 KiB
  static constexpr std::uint32_t kOversizeClass = 0xffffffffu;
  static constexpr std::size_t kBlockSize = 64 * 1024;

  static std::size_t class_payload(std::size_t c) { return kMinPayload << c; }

  ChunkHeader* carve(std::size_t chunk_bytes);

  ChunkHeader* free_lists_[kNumClasses] = {};
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::byte* bump_ = nullptr;
  std::size_t bump_left_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace nimcast::sim
