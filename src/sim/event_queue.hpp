#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/sim_time.hpp"

namespace nimcast::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] friend bool operator==(EventId, EventId) = default;
};

/// A time-ordered queue of callbacks.
///
/// Ties in time are broken by insertion sequence number, so two events
/// scheduled for the same instant fire in the order they were scheduled.
/// This FIFO tie-break is load-bearing for determinism: NI coprocessors
/// schedule sends at identical times and the paper's disciplines (FCFS,
/// FPFS) are defined by service *order*.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `when`.
  EventId schedule(Time when, Callback cb);

  /// Cancels a pending event. Returns false when the event already fired
  /// or was cancelled before. Cancellation is lazy: the heap entry stays
  /// queued and is skipped at pop time, keeping schedule/cancel O(log n).
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return callbacks_.empty(); }
  [[nodiscard]] std::size_t size() const { return callbacks_.size(); }

  /// Time of the earliest pending event. Queue must be non-empty.
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest pending event. Queue must be
  /// non-empty.
  struct Fired {
    Time time;
    Callback cb;
  };
  Fired pop();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops heap entries whose callback was cancelled.
  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace nimcast::sim
