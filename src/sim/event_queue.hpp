#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_pool.hpp"
#include "sim/sim_time.hpp"

namespace nimcast::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
/// Encodes (slot, generation); a default-constructed id never matches.
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] friend bool operator==(EventId, EventId) = default;
};

/// Move-only type-erased callback with small-buffer optimization.
///
/// Callables up to kInlineCapacity bytes live inline in the object (and
/// therefore inline in EventQueue's slot slab — no allocation at all);
/// larger ones are placed in the queue's EventPool, never on the global
/// heap. This is what makes scheduling an event allocation-free on the
/// hot path.
class EventCallback {
 public:
  static constexpr std::size_t kInlineCapacity = 48;

  EventCallback() noexcept = default;
  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty EventCallback");
    ops_->call(obj_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(obj_);
      if (obj_ != inline_storage()) EventPool::release(obj_);
      ops_ = nullptr;
      obj_ = nullptr;
    }
  }

  /// Constructs `f` in place, using `pool` when it does not fit inline.
  template <typename F>
  void emplace(F&& f, EventPool& pool) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>,
                  "event callback must be invocable as void()");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "over-aligned event callbacks are not supported");
    reset();
    if constexpr (sizeof(D) <= kInlineCapacity &&
                  std::is_nothrow_move_constructible_v<D>) {
      obj_ = inline_storage();
    } else {
      obj_ = pool.allocate(sizeof(D));
    }
    ::new (obj_) D(std::forward<F>(f));
    ops_ = ops_for<D>();
  }

 private:
  struct Ops {
    void (*call)(void*);
    // Move-constructs into dst and destroys src; used when relocating an
    // inline callback (slab growth, move of the owning EventCallback).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static const Ops* ops_for() {
    static constexpr Ops ops{
        [](void* obj) { (*static_cast<D*>(obj))(); },
        [](void* dst, void* src) noexcept {
          D* from = static_cast<D*>(src);
          ::new (dst) D(std::move(*from));
          from->~D();
        },
        [](void* obj) noexcept { static_cast<D*>(obj)->~D(); }};
    return &ops;
  }

  void move_from(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) {
      obj_ = nullptr;
      return;
    }
    if (other.obj_ == other.inline_storage()) {
      obj_ = inline_storage();
      ops_->relocate(obj_, other.obj_);
    } else {
      obj_ = other.obj_;  // pool chunk: steal the pointer
    }
    other.ops_ = nullptr;
    other.obj_ = nullptr;
  }

  [[nodiscard]] void* inline_storage() noexcept { return inline_; }
  [[nodiscard]] const void* inline_storage() const noexcept { return inline_; }

  const Ops* ops_ = nullptr;
  void* obj_ = nullptr;
  alignas(std::max_align_t) std::byte inline_[kInlineCapacity];
};

/// A time-ordered queue of callbacks.
///
/// Ties in time are broken by insertion sequence number, so two events
/// scheduled for the same instant fire in the order they were scheduled.
/// This FIFO tie-break is load-bearing for determinism: NI coprocessors
/// schedule sends at identical times and the paper's disciplines (FCFS,
/// FPFS) are defined by service *order*.
///
/// Implementation: an indexed 4-ary min-heap over a slab of pooled event
/// slots. Scheduling allocates nothing on the hot path (slot reuse +
/// inline callback storage), cancellation removes the heap entry and
/// frees the slot immediately (O(log n), no tombstones), and stale
/// EventIds are rejected by a per-slot generation counter. Not
/// thread-safe; each worker thread owns its own queue.
///
/// The tie-break key is a 128-bit (hi, lo) pair. The plain schedule()
/// path uses (0, insertion counter) — pure FIFO, the historical
/// behaviour. schedule_keyed() lets a caller supply the key explicitly;
/// the sharded simulator passes (schedule-time, lineage key) so that
/// events merged across shard queues keep the order a serial execution
/// would have given them (a serial run's insertion counter is monotone
/// in schedule time, so the two keyings agree whenever schedule times
/// differ; rekey_lo() lets the sharded driver finalize lineage keys at
/// window barriers once global dispatch ordinals are known).
class EventQueue {
 public:
  using Callback = EventCallback;

  EventQueue() : pool_{std::make_unique<EventPool>()} {}
  EventQueue(EventQueue&&) noexcept = default;
  EventQueue& operator=(EventQueue&&) noexcept = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `f` at absolute time `when`.
  template <typename F>
  EventId schedule(Time when, F&& f) {
    return schedule_keyed(when, 0, next_order_++, std::forward<F>(f));
  }

  /// Schedules `f` at `when` with an explicit (hi, lo) tie-break key:
  /// events at the same time fire in ascending (hi, lo) order. Mixing
  /// schedule() and schedule_keyed() on one queue is allowed but the
  /// keys then come from different spaces; callers that need a total
  /// order must pick one keying per queue.
  template <typename F>
  EventId schedule_keyed(Time when, std::uint64_t hi, std::uint64_t lo,
                         F&& f) {
    EventCallback cb;
    cb.emplace(std::forward<F>(f), *pool_);
    assert(cb && "scheduling an empty callback");
    const std::uint32_t slot = acquire_slot();
    Slot& s = slab_[slot];
    s.time = when;
    s.cb = std::move(cb);
    heap_push(when, hi, lo, slot);
    return EventId{make_id(slot, s.generation)};
  }

  /// Claims the next plain-FIFO insertion counter without scheduling
  /// anything. The claimed value can be replayed via
  /// schedule_keyed(when, 0, key) at several *distinct* times — a
  /// self-rescheduling chain keeps one stable position in the FIFO
  /// tie-break (after everything scheduled before the claim, before
  /// everything scheduled after it).
  [[nodiscard]] std::uint64_t reserve_order() { return next_order_++; }

  /// Cancels a pending event. Returns false when the event already fired
  /// or was cancelled before. The heap entry is removed and the slot is
  /// freed immediately, so schedule/cancel churn (e.g. retry timers) does
  /// not grow the queue.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Pre-sizes the slot slab and heap for `n` concurrent events.
  void reserve(std::size_t n);

  /// Time of the earliest pending event. Queue must be non-empty.
  [[nodiscard]] Time next_time() const {
    assert(!heap_.empty() && "next_time() on empty queue");
    return heap_.front().time;
  }

  /// Removes and returns the earliest pending event. Queue must be
  /// non-empty. The returned callback may own pool storage; it must be
  /// destroyed before the queue (the simulator's dispatch loop does).
  /// (hi, lo) is the tie-break key the event was scheduled with — the
  /// sharded driver records it to reconstruct global dispatch order.
  struct Fired {
    Time time;
    std::uint64_t hi;
    std::uint64_t lo;
    Callback cb;
  };
  Fired pop();

  /// Applies `fn(time, hi, lo) -> lo` to every pending entry and restores
  /// the heap invariant in one pass (the heapify runs only when some key
  /// actually changed). The sharded driver uses this to replace
  /// provisional lineage keys with final ones — as an amortized
  /// compaction pass and, filtered by (time, hi), when cross-shard mail
  /// could tie a provisional key; `fn` must be order-preserving over the
  /// entries it changes relative to the ones it leaves alone (the ordinal
  /// assignment is).
  template <typename Fn>
  void rekey_lo(Fn&& fn) {
    bool changed = false;
    for (HeapEntry& e : heap_) {
      const std::uint64_t lo = fn(e.time, e.hi, e.lo);
      if (lo != e.lo) {
        e.lo = lo;
        changed = true;
      }
    }
    if (!changed || heap_.size() < 2) return;
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }

  /// Number of event slots allocated in the slab (live + free-listed).
  /// Exposed for tests: schedule/cancel churn must not grow this beyond
  /// the peak number of *concurrently pending* events.
  [[nodiscard]] std::size_t slot_capacity() const { return slab_.size(); }

 private:
  struct Slot {
    Time time{};
    std::uint32_t generation = 1;
    std::uint32_t heap_index = kNoHeapIndex;
    EventCallback cb;
  };
  struct HeapEntry {
    Time time;
    std::uint64_t hi;
    std::uint64_t lo;
    std::uint32_t slot;
  };
  static constexpr std::uint32_t kNoHeapIndex = 0xffffffffu;

  static std::uint64_t make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<std::uint64_t>(generation) << 32) | slot;
  }
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.hi != b.hi) return a.hi < b.hi;
    return a.lo < b.lo;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void heap_push(Time time, std::uint64_t hi, std::uint64_t lo,
                 std::uint32_t slot);
  void heap_remove(std::size_t index);
  std::size_t sift_up(std::size_t index);
  void sift_down(std::size_t index);

  std::vector<Slot> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;
  std::unique_ptr<EventPool> pool_;
  std::uint64_t next_order_ = 1;
};

}  // namespace nimcast::sim
