#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "sim/sim_time.hpp"

namespace nimcast::sim {

/// Sequential discrete-event simulator.
///
/// Entities (switches, network interfaces, hosts) schedule callbacks on the
/// shared simulator; `run()` dispatches them in time order until the event
/// queue drains. The simulator owns the clock: entities must never keep
/// their own notion of "now".
///
/// Typical use:
///
///     Simulator simctx;
///     simctx.schedule_in(Time::us(3.0), [] { /* NI send done */ });
///     simctx.run();
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing across callbacks.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `cb` at absolute time `when`; `when >= now()` required.
  /// Accepts any void() callable; it is constructed directly in the event
  /// queue's slot slab (or its pool), never on the global heap.
  template <typename F>
  EventId schedule_at(Time when, F&& cb) {
    if (when < now_) throw_past_schedule(when);
    return queue_.schedule(when, std::forward<F>(cb));
  }

  /// Schedules `cb` `delay` after the current time; `delay >= 0` required.
  template <typename F>
  EventId schedule_in(Time delay, F&& cb) {
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Cancels a pending event; returns false if it already ran.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Dispatches events until the queue drains. Returns the number of events
  /// dispatched. Throws std::runtime_error if more than `event_limit`
  /// events fire, which catches accidental infinite event loops (e.g. a
  /// retry that re-schedules itself at zero delay forever).
  std::uint64_t run(std::uint64_t event_limit = kDefaultEventLimit);

  /// Dispatches events with time <= `until`. Events scheduled past `until`
  /// stay pending and the clock is advanced to exactly `until`.
  std::uint64_t run_until(Time until,
                          std::uint64_t event_limit = kDefaultEventLimit);

  /// Runs at most one event. Returns false when the queue was empty.
  bool step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

  /// Pre-sizes the event queue for `n` concurrent events.
  void reserve_events(std::size_t n) { queue_.reserve(n); }

  static constexpr std::uint64_t kDefaultEventLimit = 500'000'000;

 private:
  [[noreturn]] void throw_past_schedule(Time when) const;

  EventQueue queue_;
  Time now_ = Time::zero();
  std::uint64_t dispatched_ = 0;
};

}  // namespace nimcast::sim
