#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/sim_time.hpp"

namespace nimcast::sim {

/// Sequential discrete-event simulator.
///
/// Entities (switches, network interfaces, hosts) schedule callbacks on the
/// shared simulator; `run()` dispatches them in time order until the event
/// queue drains. The simulator owns the clock: entities must never keep
/// their own notion of "now".
///
/// Typical use:
///
///     Simulator simctx;
///     simctx.schedule_in(Time::us(3.0), [] { /* NI send done */ });
///     simctx.run();
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing across callbacks.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `cb` at absolute time `when`; `when >= now()` required.
  /// Accepts any void() callable; it is constructed directly in the event
  /// queue's slot slab (or its pool), never on the global heap.
  template <typename F>
  EventId schedule_at(Time when, F&& cb) {
    if (when < now_) throw_past_schedule(when);
    if (shard_order_enabled()) {
      return queue_.schedule_keyed(when,
                                   static_cast<std::uint64_t>(now_.count_ns()),
                                   alloc_lo(), std::forward<F>(cb));
    }
    return queue_.schedule(when, std::forward<F>(cb));
  }

  /// Schedules `cb` `delay` after the current time; `delay >= 0` required.
  template <typename F>
  EventId schedule_in(Time delay, F&& cb) {
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Shard-order mode (used by sim::ShardedSimulator): reconstructs the
  /// serial engine's FIFO tie-break exactly. A serial run orders
  /// same-time events by insertion counter, and two counters compare
  /// like the lexicographic pair
  ///
  ///     (schedule time, (dispatch ordinal of the scheduling event,
  ///                      schedule-call index within that dispatch))
  ///
  /// because counters are handed out in dispatch order. The first
  /// component is the `hi` key (stamped at schedule time); the pair in
  /// the second component is the `lo` "lineage key". Events scheduled
  /// from single-threaded phases (setup, barrier-phase globals, between
  /// runs) get a final lineage key immediately from the shared
  /// ScheduleContext; events scheduled inside a window dispatch get a
  /// *provisional* key (kProvisionalBit | local dispatch index | call
  /// index) that the sharded driver rewrites to the final key at the
  /// next window barrier, once global dispatch ordinals for the closed
  /// window are known (see ShardedSimulator). A provisional key only
  /// ever ties in (time, hi) against keys from the same shard and
  /// window — cross-window ties are impossible because `hi` is the
  /// schedule time — so the provisional encoding is already
  /// order-correct locally, and kProvisionalBit sorts fresh events
  /// after single-threaded-phase events at the same (time, hi), which
  /// is exactly the serial counter order. Must be called before any
  /// event is scheduled.
  void enable_shard_order() { shard_order_ = true; }
  [[nodiscard]] bool shard_order_enabled() const { return shard_order_; }

  /// Lineage-key layout: lo = [provisional bit | ordinal or local
  /// dispatch index | schedule-call index].
  static constexpr unsigned kCallIdxBits = 18;
  static constexpr std::uint64_t kCallIdxMask = (1ull << kCallIdxBits) - 1;
  static constexpr std::uint64_t kProvisionalBit = 1ull << 63;

  /// Counter state for final lineage keys, shared by every shard of one
  /// ShardedSimulator (single-threaded phases only). `per_call` mode
  /// (setup, between runs) treats each schedule call as its own parent —
  /// matching the serial engine, where registration-time schedules get
  /// consecutive insertion counters; pinned mode is used while a global
  /// event runs, with `pinned_ordinal` = that event's dispatch ordinal.
  struct ScheduleContext {
    std::uint64_t next_ordinal = 0;
    std::uint64_t pinned_ordinal = 0;
    std::uint32_t idx = 0;
    bool per_call = true;
  };

  /// Installs the shared counter context and enables dispatch recording
  /// (the sharded driver drains the records at every window barrier).
  void set_schedule_context(ScheduleContext* ctx) {
    shared_ctx_ = ctx;
    recording_ = ctx != nullptr;
  }

  /// One dispatched event, in dispatch order, with the key it fired
  /// under — the input to the barrier's global ordinal assignment.
  struct DispatchRecord {
    Time time;
    std::uint64_t hi;
    std::uint64_t lo;
  };

  /// Moves the closed window's dispatch records into `out` (its old
  /// storage is recycled as the next window's buffer). The local dispatch
  /// index is *cumulative* — it never resets — so a provisional key's
  /// parent index identifies one dispatch of this shard across the whole
  /// run, and the sharded driver can defer the ordinal merge off the
  /// critical path (an ever-growing per-shard ordinal table resolves
  /// parents whenever a key actually needs finalizing). Single-threaded
  /// phases only.
  void drain_window_records(std::vector<DispatchRecord>& out) {
    out.clear();
    out.swap(records_);
  }

  /// Rewrites every pending provisional lineage key with `fn`
  /// (provisional lo -> final lo) in one heap pass. The sharded driver
  /// runs this as an *amortized compaction* (table-trim points and
  /// run() exit), not per window. Single-threaded phases only.
  template <typename Fn>
  void rekey_provisional(Fn&& fn) {
    queue_.rekey_lo([&fn](Time, std::uint64_t, std::uint64_t lo) {
      return (lo & kProvisionalBit) != 0 ? fn(lo) : lo;
    });
  }

  /// Targeted variant: rewrites only pending provisional keys whose
  /// (firing time, hi) the predicate selects. The sharded driver uses it
  /// when cross-shard mail lands: a freshly-inserted mailed event can tie
  /// a still-provisional local key at the same (time, hi), and only those
  /// tying keys need their final form early. Single-threaded phases only.
  template <typename Pred, typename Fn>
  void rekey_provisional_if(Pred&& pred, Fn&& fn) {
    queue_.rekey_lo([&](Time t, std::uint64_t hi, std::uint64_t lo) {
      return (lo & kProvisionalBit) != 0 && pred(t, hi) ? fn(lo) : lo;
    });
  }

  /// Allocates the (hi, lo) key a schedule call made right now would
  /// get, without scheduling — cross-shard mailboxes stamp messages at
  /// post() time so mailed events interleave with the sender's local
  /// schedules in call order. `provisional` tells the driver whether the
  /// lo key still needs barrier finalization. Requires shard-order mode.
  struct PostKey {
    std::uint64_t hi;
    std::uint64_t lo;
    bool provisional;
  };
  [[nodiscard]] PostKey alloc_post_key() {
    assert(shard_order_enabled());
    return PostKey{static_cast<std::uint64_t>(now_.count_ns()), alloc_lo(),
                   in_dispatch_};
  }

  /// Schedules `cb` at `when` with an explicit (hi, lo) tie-break key —
  /// the receive half of a cross-shard handoff: the *sender's* key is
  /// replayed into this shard's queue so the event fires exactly where a
  /// serial execution would have placed it.
  template <typename F>
  EventId schedule_at_keyed(Time when, std::uint64_t hi, std::uint64_t lo,
                            F&& cb) {
    if (when < now_) throw_past_schedule(when);
    return queue_.schedule_keyed(when, hi, lo, std::forward<F>(cb));
  }

  /// Claims a plain-FIFO tie-break counter (see EventQueue::
  /// reserve_order); pair with schedule_at_keyed(when, 0, key) to hold a
  /// fixed position in the default keying across a chain of events at
  /// distinct times. Default-keyed (non-shard-order) simulators only —
  /// shard-order mode draws keys from a different space.
  [[nodiscard]] std::uint64_t reserve_order() {
    assert(!shard_order_enabled());
    return queue_.reserve_order();
  }

  /// Advances the clock to `t` without dispatching anything; `t >= now()`
  /// required. Window barriers use this to line every shard up at an
  /// agreed instant (e.g. a fault time) before cross-shard work happens.
  void advance_to(Time t) {
    if (t < now_) throw_past_schedule(t);
    now_ = t;
  }

  /// Time of the most recently dispatched event (zero if none fired yet).
  /// Unlike now(), this does not move when run_until/advance_to push the
  /// clock past the last event — it is the shard-local piece of the
  /// "global now" a sharded run reports to callers.
  [[nodiscard]] Time last_event_time() const { return last_event_; }

  /// Cancels a pending event; returns false if it already ran.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Dispatches events until the queue drains. Returns the number of events
  /// dispatched. Throws std::runtime_error if more than `event_limit`
  /// events fire, which catches accidental infinite event loops (e.g. a
  /// retry that re-schedules itself at zero delay forever).
  std::uint64_t run(std::uint64_t event_limit = kDefaultEventLimit);

  /// Dispatches events with time <= `until`. Events scheduled past `until`
  /// stay pending and the clock is advanced to exactly `until`.
  std::uint64_t run_until(Time until,
                          std::uint64_t event_limit = kDefaultEventLimit);

  /// Runs at most one event. Returns false when the queue was empty.
  bool step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  /// Time of the earliest pending event; requires !idle(). The sharded
  /// driver uses it to size the next conservative window.
  [[nodiscard]] Time next_event_time() const { return queue_.next_time(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

  /// Pre-sizes the event queue for `n` concurrent events.
  void reserve_events(std::size_t n) { queue_.reserve(n); }

  static constexpr std::uint64_t kDefaultEventLimit = 500'000'000;

 private:
  [[noreturn]] void throw_past_schedule(Time when) const;

  /// Next lineage key. Inside a window dispatch: provisional, parented
  /// on the currently dispatching event's local index. Outside dispatch
  /// (single-threaded phases): final, from the shared context — or from
  /// a private fallback context for a standalone shard-order simulator,
  /// whose provisional keys are never rewritten but are already
  /// order-correct locally (see enable_shard_order()).
  [[nodiscard]] std::uint64_t alloc_lo() {
    if (in_dispatch_) {
      assert(window_dispatches_ > 0);
      assert(call_idx_ <= kCallIdxMask && "schedule calls per dispatch");
      return kProvisionalBit |
             ((window_dispatches_ - 1) << kCallIdxBits) | call_idx_++;
    }
    ScheduleContext& ctx = shared_ctx_ != nullptr ? *shared_ctx_ : own_ctx_;
    if (ctx.per_call) return ctx.next_ordinal++ << kCallIdxBits;
    assert(ctx.idx <= kCallIdxMask && "schedule calls per global event");
    return (ctx.pinned_ordinal << kCallIdxBits) | ctx.idx++;
  }

  /// Dispatch-loop bookkeeping shared by run/run_until/step.
  void begin_dispatch(const EventQueue::Fired& fired) {
    now_ = fired.time;
    last_event_ = fired.time;
    ++dispatched_;
    if (shard_order_) {
      ++window_dispatches_;
      call_idx_ = 0;
      in_dispatch_ = true;
      if (recording_) records_.push_back({fired.time, fired.hi, fired.lo});
    }
  }
  void end_dispatch() { in_dispatch_ = false; }

  EventQueue queue_;
  Time now_ = Time::zero();
  Time last_event_ = Time::zero();
  std::uint64_t dispatched_ = 0;
  std::vector<DispatchRecord> records_;
  ScheduleContext* shared_ctx_ = nullptr;
  ScheduleContext own_ctx_;
  std::uint64_t window_dispatches_ = 0;
  std::uint32_t call_idx_ = 0;
  bool in_dispatch_ = false;
  bool recording_ = false;
  bool shard_order_ = false;  // false = default FIFO keying
};

}  // namespace nimcast::sim
