#include "sim/trace_export.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nimcast::sim {
namespace {

/// Minimal JSON string escaping; trace messages are ASCII but may carry
/// quotes in the future.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string to_chrome_trace_json(const Trace& trace) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& r : trace.records()) {
    if (!first) os << ",";
    first = false;
    // ts is in microseconds per the trace-event spec.
    os << "\n{\"name\":\"" << escape(r.message) << "\",\"cat\":\""
       << to_string(r.category) << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
       << r.time.as_us() << ",\"pid\":0,\"tid\":" << r.entity << "}";
  }
  os << "\n]\n";
  return os.str();
}

void write_chrome_trace(const Trace& trace, const std::string& path) {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error("write_chrome_trace: cannot open " + path);
  }
  out << to_chrome_trace_json(trace);
}

}  // namespace nimcast::sim
