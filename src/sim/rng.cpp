#include "sim/rng.hpp"

#include <cassert>
#include <numeric>
#include <stdexcept>

namespace nimcast::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64; used only to expand the user seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0 && "next_below(0)");
  // Lemire's method: multiply into a 128-bit product; reject the small
  // biased strip at the bottom of each residue class.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_in: lo > hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::fork() { return Rng{next_u64()}; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace nimcast::sim
