#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "collectives/collective_engine.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "mcast/multicast_engine.hpp"
#include "netif/system_params.hpp"
#include "network/network_config.hpp"
#include "routing/route_table.hpp"
#include "sim/rng.hpp"
#include "topology/irregular.hpp"
#include "topology/kary_ncube.hpp"
#include "traffic/scheduler.hpp"
#include "traffic/workload.hpp"

namespace nimcast::api {

/// High-level entry point: a simulated parallel system with smart
/// (FPFS) network interfaces, ready to run optimally-shaped collective
/// operations.
///
/// The Communicator bundles everything the lower layers need wiring
/// together — topology, deadlock-free routing, the contention-free node
/// ordering, the precomputed optimal-k table — and exposes MPI-flavoured
/// operations sized in *bytes*. Packetization (64-byte packets by
/// default), tree selection (Theorem 3) and contention-free construction
/// (Fig. 11) all happen behind this interface.
///
///     auto comm = api::Communicator::irregular();          // 64 hosts
///     auto r = comm.multicast(/*src=*/0, {1, 5, 9}, /*bytes=*/1024);
///     std::printf("%.1f us over a %d-binomial tree\n",
///                 r.latency.as_us(), r.fanout_bound);
class Communicator {
 public:
  struct Options {
    netif::SystemParams params;
    net::NetworkConfig network;
    /// NI combining cost for reduce/allreduce.
    sim::Time t_comb = sim::Time::us(1.0);
    /// Seed for random topology generation (irregular systems).
    std::uint64_t seed = 1997;
    /// NI architecture multicasts run on. Use kReliableFpfs on lossy or
    /// faulty fabrics; collectives always run the smart FPFS engine.
    mcast::NiStyle style = mcast::NiStyle::kSmartFpfs;
    /// Reliability protocol knobs (kReliableFpfs only).
    netif::ReliabilityParams reliability = {};
    /// Retry-with-repair policy applied when network.faults is non-empty.
    /// Shared by the multicast engine and the collective engine.
    mcast::RepairPolicy repair = {};
    /// What collectives do when faults leave them incomplete: throw
    /// (kFailFast) or repair the tree and report a per-host verdict.
    collectives::RepairMode collective_mode =
        collectives::RepairMode::kDegradeAndContinue;
    /// Rotation members (R) stream_broadcast plans: packet g of a stream
    /// is dispatched down channel-decorrelated tree g mod R. 1 keeps the
    /// paper's fixed tree; > 1 requires up*/down* routing (irregular
    /// systems) and smart FPFS NIs.
    std::int32_t rotation_trees = 1;
    /// Per-packet member policy for stream_broadcast: static keeps the
    /// g mod R rotation; adaptive picks the member the congestion
    /// telemetry scores cheapest (idle fabric: byte-identical to
    /// static). NIMCAST_SELECTION=static|adaptive overrides this in the
    /// harness layer, not here.
    mcast::Selection selection = mcast::Selection::kStatic;
    /// Multi-tenant traffic mix run_traffic() generates: offered load
    /// (ops_per_ms), group-size distribution, class fractions and
    /// mid-stream churn probability. Seeded from its own `seed` field.
    traffic::WorkloadConfig traffic_workload = {};
    /// Contention-aware admission policy run_traffic() schedules the mix
    /// under (Policy::kFifo = no-pacing baseline).
    traffic::SchedulerConfig traffic_scheduler = {};
  };

  /// A random irregular switch-based cluster (paper Section 5.2 system
  /// by default).
  [[nodiscard]] static Communicator irregular();
  [[nodiscard]] static Communicator irregular(const topo::IrregularConfig& cfg);
  [[nodiscard]] static Communicator irregular(const topo::IrregularConfig& cfg,
                                              const Options& options);

  /// A k-ary n-cube MPP with dimension-ordered routing. Tori use two
  /// virtual channels per physical channel (dateline scheme) to stay
  /// deadlock-free.
  [[nodiscard]] static Communicator mesh(const topo::KAryNCubeConfig& cfg);
  [[nodiscard]] static Communicator mesh(const topo::KAryNCubeConfig& cfg,
                                         const Options& options);

  Communicator(Communicator&&) noexcept;
  Communicator& operator=(Communicator&&) noexcept;
  ~Communicator();

  [[nodiscard]] std::int32_t num_hosts() const;
  [[nodiscard]] const std::string& system_name() const;
  [[nodiscard]] const Options& options() const;

  /// Result of one simulated operation.
  struct OpReport {
    sim::Time latency;           ///< full operation latency (t_s .. t_r)
    std::int32_t packets = 0;    ///< packets per logical message
    std::int32_t fanout_bound = 0;  ///< the k the tree was built with
    std::int32_t tree_depth = 0;    ///< steps of the first packet
    std::int64_t packets_on_wire = 0;
    sim::Time contention;        ///< cumulative channel block time
    /// Fault verdict — filled for every operation. Collectives run
    /// degrade-and-continue by default (Options::collective_mode);
    /// `delivered` counts participants whose per-kind obligation was met
    /// (message in, gathered at root, contribution folded, result held).
    mcast::Outcome outcome = mcast::Outcome::kComplete;
    std::int32_t delivered = 0;    ///< destinations that got the message
    std::int32_t unreachable = 0;  ///< destinations lost to partitions
    std::int32_t repairs = 0;      ///< tree-repair rounds consumed
    /// 1 when the initiator died and an elected replacement finished the
    /// operation (mcast::RepairPolicy::root_handoff), else 0.
    std::int32_t root_handoffs = 0;
    std::int64_t retransmissions = 0;  ///< reliable-NI retransmits
  };

  /// One-to-many, same data: the paper's headline operation. The tree is
  /// the optimal k-binomial tree for (|dests|+1, packet count).
  [[nodiscard]] OpReport multicast(topo::HostId source,
                                   std::span<const topo::HostId> dests,
                                   std::int64_t bytes) const;
  /// Brace-list convenience: comm.multicast(0, {3, 9, 17}, 4096).
  [[nodiscard]] OpReport multicast(topo::HostId source,
                                   std::initializer_list<topo::HostId> dests,
                                   std::int64_t bytes) const {
    return multicast(source, std::span<const topo::HostId>{dests.begin(),
                                                           dests.size()},
                     bytes);
  }

  /// Multicast to every other host.
  [[nodiscard]] OpReport broadcast(topo::HostId source,
                                   std::int64_t bytes) const;

  /// Result of one streaming broadcast (stream_broadcast).
  struct StreamReport {
    sim::Time makespan;        ///< start to last host completion
    double flits_per_us = 0.0; ///< sustained delivered throughput
    /// p99 gap between consecutive in-order packet completions at a
    /// destination (pooled over destinations).
    sim::Time p99_gap;
    std::int32_t packets = 0;          ///< stream packets
    std::int32_t fanout_bound = 0;     ///< k of every rotation member
    std::int32_t rotation_requested = 1;
    std::int32_t rotation_used = 1;    ///< classes that carried packets
    double overlap_mean = 0.0;  ///< planner channel-overlap fractions
    double overlap_max = 0.0;
    sim::Time contention;       ///< cumulative channel block time
    mcast::Outcome outcome = mcast::Outcome::kComplete;
    std::int32_t delivered = 0; ///< destinations that got the full stream
    std::int32_t repairs = 0;   ///< repair messages launched by the root
    /// Rotation members incrementally re-planned after a fault
    /// (core::replan_rotation).
    std::int32_t replans = 0;
    /// Handoff messages launched by elected replacements after the
    /// source died mid-stream.
    std::int32_t root_handoffs = 0;
    /// Stream indices re-injected by repair and handoff messages.
    std::int64_t packets_resent = 0;
    /// Effective per-packet member policy (rotation_used == 1 degrades
    /// adaptive to static).
    mcast::Selection selection = mcast::Selection::kStatic;
    /// Per-member balance: stream packets issued down each rotation
    /// member and the bottleneck NI work (µs) that share cost — how far
    /// adaptive selection diverged from round-robin. Index = member.
    std::vector<std::int64_t> member_packets;
    std::vector<double> member_ni_work_us;
    /// Telemetry snapshots the adaptive selector scored (0 = static).
    std::int64_t telemetry_snapshots = 0;
  };

  /// Streams `bytes` from `source` to every other host, packetized and
  /// dispatched round-robin over Options::rotation_trees channel-
  /// decorrelated k-binomial trees (member fan-out picked for per-packet
  /// latency, not whole-stream latency — a Theorem 3 choice over the
  /// full stream would collapse to the chain). Requires smart FPFS NIs
  /// (the default style). rotation_trees = 1 is the fixed-tree engine.
  [[nodiscard]] StreamReport stream_broadcast(topo::HostId source,
                                              std::int64_t bytes) const;

  /// Result of one multi-tenant traffic run (run_traffic).
  struct TrafficReport {
    std::int32_t ops = 0;          ///< operations in the mix
    std::int32_t multicasts = 0;
    std::int32_t streams = 0;
    std::int32_t collectives = 0;
    std::int32_t churns = 0;       ///< streams that churned mid-flight
    sim::Time makespan;            ///< first arrival to last completion
    double ops_per_sec = 0.0;      ///< sustained operation throughput
    double flits_per_us = 0.0;     ///< delivered payload throughput
    std::int64_t packets_delivered = 0;
    sim::Time fct_p50;             ///< median flow-completion time
    sim::Time fct_p99;             ///< tail flow-completion time
    std::int64_t deferral_ticks = 0;  ///< paced-scheduler deferrals
    std::int64_t scheduler_ticks = 0;
    sim::Time contention;          ///< cumulative channel block time
    /// Byte-determinism witness over the completion stream.
    std::uint64_t digest = 0;
  };

  /// Runs Options::traffic_workload — N concurrent multicast / stream /
  /// collective tenant groups over this one fabric — admitted by the
  /// Options::traffic_scheduler policy. Requires a pristine fabric (no
  /// faults, no loss) and smart FPFS NIs; deterministic given the
  /// options.
  [[nodiscard]] TrafficReport run_traffic() const;

  /// Personalized one-to-all / all-to-one / combining collectives over
  /// the same optimally-shaped tree.
  [[nodiscard]] OpReport scatter(topo::HostId source,
                                 std::int64_t bytes_per_dest) const;
  [[nodiscard]] OpReport gather(topo::HostId root,
                                std::int64_t bytes_per_src) const;
  [[nodiscard]] OpReport reduce(topo::HostId root, std::int64_t bytes) const;
  [[nodiscard]] OpReport allreduce(topo::HostId root,
                                   std::int64_t bytes) const;

  /// The fan-out bound Theorem 3 picks for a message of `bytes` to
  /// `n - 1` destinations on this system — exposed for planning without
  /// running a simulation.
  [[nodiscard]] std::int32_t plan_fanout(std::int32_t n,
                                         std::int64_t bytes) const;
  /// Packets a message of `bytes` fragments into.
  [[nodiscard]] std::int32_t packetize(std::int64_t bytes) const;

 private:
  struct Impl;
  explicit Communicator(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace nimcast::api
