#include "api/communicator.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/rotation.hpp"
#include "routing/dimension_ordered.hpp"
#include "routing/up_down.hpp"
#include "sim/stats.hpp"
#include "traffic/traffic_engine.hpp"

namespace nimcast::api {

struct Communicator::Impl {
  Options options;
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<routing::Router> router;
  /// Non-null when `router` is an up*/down* router — the rotation
  /// planner needs its level orientation to derive salted alternatives.
  const routing::UpDownRouter* updown = nullptr;
  std::unique_ptr<routing::RouteTable> routes;
  core::Chain chain;
  std::unique_ptr<core::OptimalKTable> ktable;
  std::unique_ptr<mcast::MulticastEngine> mcast_engine;
  std::unique_ptr<collectives::CollectiveEngine> coll_engine;

  void finish_setup() {
    routes = std::make_unique<routing::RouteTable>(*topology, *router);
    // Covers messages up to 512 packets (32 KiB at 64 B); larger ones
    // fall back to the direct Theorem 3 solver in choose().
    ktable = std::make_unique<core::OptimalKTable>(
        std::max<std::int32_t>(2, topology->num_hosts()), 512);
    mcast::MulticastEngine::Config mcfg{options.params, options.network,
                                        options.style, options.reliability,
                                        options.repair};
    mcfg.rotation_trees = options.rotation_trees;
    mcfg.selection = options.selection;
    mcast_engine =
        std::make_unique<mcast::MulticastEngine>(*topology, *routes, mcfg);
    coll_engine = std::make_unique<collectives::CollectiveEngine>(
        *topology, *routes,
        collectives::CollectiveEngine::Config{options.params, options.network,
                                              options.t_comb, options.repair,
                                              options.collective_mode});
  }

  [[nodiscard]] std::int32_t packetize(std::int64_t bytes) const {
    if (bytes < 0) throw std::invalid_argument("packetize: negative bytes");
    const auto per = static_cast<std::int64_t>(options.network.packet_bytes);
    return static_cast<std::int32_t>(std::max<std::int64_t>(
        1, (bytes + per - 1) / per));
  }

  [[nodiscard]] core::OptimalChoice choose(std::int32_t n,
                                           std::int32_t m) const {
    if (n >= 2 && n <= ktable->max_n() && m <= ktable->max_m()) {
      return ktable->lookup(n, m);
    }
    return core::optimal_k(n, m);
  }

  [[nodiscard]] core::HostTree tree_for(topo::HostId source,
                                        std::vector<topo::HostId> dests,
                                        std::int32_t m) const {
    const auto n = static_cast<std::int32_t>(dests.size()) + 1;
    const core::OptimalChoice c = choose(n, m);
    const core::Chain members =
        core::arrange_participants(chain, source, dests);
    return core::HostTree::bind(core::make_kbinomial(n, c.k), members);
  }

  [[nodiscard]] std::vector<topo::HostId> everyone_but(
      topo::HostId source) const {
    std::vector<topo::HostId> dests;
    for (topo::HostId h = 0; h < topology->num_hosts(); ++h) {
      if (h != source) dests.push_back(h);
    }
    return dests;
  }
};

Communicator Communicator::irregular() {
  return irregular(topo::IrregularConfig{}, Options{});
}
Communicator Communicator::irregular(const topo::IrregularConfig& cfg) {
  return irregular(cfg, Options{});
}

Communicator Communicator::irregular(const topo::IrregularConfig& cfg,
                                     const Options& options) {
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  sim::Rng rng{options.seed};
  impl->topology =
      std::make_unique<topo::Topology>(topo::make_irregular(cfg, rng));
  auto updown =
      std::make_unique<routing::UpDownRouter>(impl->topology->switches());
  impl->chain = core::cco_ordering(*impl->topology, *updown);
  impl->updown = updown.get();
  impl->router = std::move(updown);
  impl->finish_setup();
  return Communicator{std::move(impl)};
}

Communicator Communicator::mesh(const topo::KAryNCubeConfig& cfg) {
  return mesh(cfg, Options{});
}

Communicator Communicator::mesh(const topo::KAryNCubeConfig& cfg,
                                const Options& options) {
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  impl->topology =
      std::make_unique<topo::Topology>(topo::make_kary_ncube(cfg));
  impl->router = std::make_unique<routing::DimensionOrderedRouter>(
      impl->topology->switches(), cfg);
  impl->chain = core::dimension_chain(*impl->topology);
  impl->finish_setup();
  return Communicator{std::move(impl)};
}

Communicator::Communicator(std::unique_ptr<Impl> impl)
    : impl_{std::move(impl)} {}
Communicator::Communicator(Communicator&&) noexcept = default;
Communicator& Communicator::operator=(Communicator&&) noexcept = default;
Communicator::~Communicator() = default;

std::int32_t Communicator::num_hosts() const {
  return impl_->topology->num_hosts();
}
const std::string& Communicator::system_name() const {
  return impl_->topology->name();
}
const Communicator::Options& Communicator::options() const {
  return impl_->options;
}

std::int32_t Communicator::packetize(std::int64_t bytes) const {
  return impl_->packetize(bytes);
}

std::int32_t Communicator::plan_fanout(std::int32_t n,
                                       std::int64_t bytes) const {
  return impl_->choose(n, impl_->packetize(bytes)).k;
}

Communicator::OpReport Communicator::multicast(
    topo::HostId source, std::span<const topo::HostId> dests,
    std::int64_t bytes) const {
  if (dests.empty()) {
    throw std::invalid_argument("multicast: no destinations");
  }
  const std::int32_t m = impl_->packetize(bytes);
  const core::HostTree tree =
      impl_->tree_for(source, {dests.begin(), dests.end()}, m);
  const mcast::MulticastResult r = impl_->mcast_engine->run(tree, m);
  OpReport report;
  report.latency = r.latency;
  report.packets = m;
  report.fanout_bound =
      impl_->choose(static_cast<std::int32_t>(dests.size()) + 1, m).k;
  report.tree_depth =
      impl_->choose(static_cast<std::int32_t>(dests.size()) + 1, m).t1;
  report.packets_on_wire = r.packets_delivered;
  report.contention = r.total_channel_block_time;
  report.outcome = r.outcome;
  report.delivered = r.delivered_count();
  for (const auto& d : r.destinations) {
    if (!d.reachable) ++report.unreachable;
  }
  report.repairs = r.repairs;
  report.root_handoffs = r.root_handoffs;
  report.retransmissions = r.retransmissions;
  return report;
}

Communicator::OpReport Communicator::broadcast(topo::HostId source,
                                               std::int64_t bytes) const {
  const auto dests = impl_->everyone_but(source);
  return multicast(source, dests, bytes);
}

Communicator::StreamReport Communicator::stream_broadcast(
    topo::HostId source, std::int64_t bytes) const {
  const auto dests = impl_->everyone_but(source);
  if (dests.empty()) {
    throw std::invalid_argument("stream_broadcast: single-host system");
  }
  const std::int32_t m = impl_->packetize(bytes);
  const auto n = static_cast<std::int32_t>(dests.size()) + 1;
  // Latency-SLO fan-out: pick k for a short reference message, not the
  // whole stream — Theorem 3 over the stream length would collapse to
  // the chain, which is throughput-optimal already but has O(n)
  // per-packet depth.
  const std::int32_t k = std::clamp(
      impl_->choose(n, std::min<std::int32_t>(m, 4)).k, 1, n - 1);
  const core::Chain members =
      core::arrange_participants(impl_->chain, source, dests);
  core::RotationPlan plan;
  if (impl_->updown != nullptr) {
    core::RotationConfig rc;
    rc.rotation_trees = impl_->options.rotation_trees;
    rc.fanout_bound = k;
    plan = core::plan_rotation(*impl_->topology, *impl_->routes,
                               *impl_->updown, members, rc);
  } else {
    if (impl_->options.rotation_trees > 1) {
      throw std::invalid_argument(
          "stream_broadcast: rotation_trees > 1 requires up*/down* routing");
    }
    plan.requested = 1;
    plan.fanout_bound = k;
    core::RotationMember member;
    member.tree = core::HostTree::bind(core::make_kbinomial(n, k), members);
    plan.members.push_back(std::move(member));
  }
  const mcast::StreamingResult r = impl_->mcast_engine->run_streaming(plan, m);
  StreamReport report;
  report.makespan = r.makespan;
  report.flits_per_us = r.flits_per_us;
  report.p99_gap = r.p99_gap;
  report.packets = r.stream_packets;
  report.fanout_bound = k;
  report.rotation_requested = r.rotation_requested;
  report.rotation_used = r.rotation_used;
  report.overlap_mean = r.overlap_mean;
  report.overlap_max = r.overlap_max;
  report.contention = r.total_channel_block_time;
  report.outcome = r.outcome;
  for (const auto& d : r.destinations) {
    if (d.delivered) ++report.delivered;
  }
  report.repairs = r.repairs;
  report.replans = r.replans;
  report.root_handoffs = r.root_handoffs;
  report.packets_resent = r.packets_resent;
  report.selection = r.selection;
  report.member_packets = r.member_packets;
  report.member_ni_work_us = r.member_ni_work_us;
  report.telemetry_snapshots = r.telemetry_snapshots;
  return report;
}

Communicator::TrafficReport Communicator::run_traffic() const {
  const Options& opt = impl_->options;
  traffic::TrafficConfig tcfg;
  tcfg.params = opt.params;
  tcfg.network = opt.network;
  tcfg.scheduler = opt.traffic_scheduler;
  const traffic::TrafficEngine engine{*impl_->topology, *impl_->routes, tcfg};
  const traffic::Workload mix = traffic::generate_workload(
      impl_->topology->num_hosts(), impl_->chain, opt.traffic_workload);
  const traffic::TrafficResult r = engine.run(mix);

  TrafficReport report;
  report.ops = static_cast<std::int32_t>(r.ops.size());
  report.multicasts = mix.multicasts;
  report.streams = mix.streams;
  report.collectives = mix.collectives;
  report.churns = mix.churns;
  report.makespan = r.makespan;
  report.ops_per_sec = r.ops_per_sec;
  report.flits_per_us = r.flits_per_us;
  report.packets_delivered = r.packets_delivered;
  sim::Samples fct;
  for (const traffic::OpRecord& rec : r.ops) fct.add(rec.fct().as_us());
  report.fct_p50 = sim::Time::us(fct.percentile(50.0));
  report.fct_p99 = sim::Time::us(fct.percentile(99.0));
  report.deferral_ticks = r.deferral_ticks;
  report.scheduler_ticks = r.ticks;
  report.contention = r.total_channel_block_time;
  report.digest = r.digest;
  return report;
}

namespace {

Communicator::OpReport from_collective(const collectives::CollectiveResult& r,
                                       std::int32_t m, std::int32_t k,
                                       std::int32_t t1,
                                       std::int32_t n_participants) {
  Communicator::OpReport report;
  report.latency = r.latency;
  report.packets = m;
  report.fanout_bound = k;
  report.tree_depth = t1;
  report.packets_on_wire = r.packets_injected;
  report.contention = r.total_channel_block_time;
  report.outcome = r.outcome;
  // Fault-free runs skip per-participant bookkeeping: everyone delivered.
  report.delivered =
      r.participants.empty() ? n_participants : r.delivered_count();
  for (const auto& p : r.participants) {
    if (!p.reachable) ++report.unreachable;
  }
  report.repairs = r.repairs;
  report.root_handoffs = r.root_handoffs;
  return report;
}

}  // namespace

Communicator::OpReport Communicator::scatter(
    topo::HostId source, std::int64_t bytes_per_dest) const {
  const std::int32_t m = impl_->packetize(bytes_per_dest);
  const auto dests = impl_->everyone_but(source);
  const auto choice =
      impl_->choose(static_cast<std::int32_t>(dests.size()) + 1, m);
  const auto tree = impl_->tree_for(source, dests, m);
  return from_collective(
      impl_->coll_engine->run(collectives::CollectiveKind::kScatter, tree, m),
      m, choice.k, choice.t1, static_cast<std::int32_t>(dests.size()));
}

Communicator::OpReport Communicator::gather(topo::HostId root,
                                            std::int64_t bytes_per_src) const {
  const std::int32_t m = impl_->packetize(bytes_per_src);
  const auto dests = impl_->everyone_but(root);
  const auto choice =
      impl_->choose(static_cast<std::int32_t>(dests.size()) + 1, m);
  const auto tree = impl_->tree_for(root, dests, m);
  return from_collective(
      impl_->coll_engine->run(collectives::CollectiveKind::kGather, tree, m),
      m, choice.k, choice.t1, static_cast<std::int32_t>(dests.size()));
}

Communicator::OpReport Communicator::reduce(topo::HostId root,
                                            std::int64_t bytes) const {
  const std::int32_t m = impl_->packetize(bytes);
  const auto dests = impl_->everyone_but(root);
  const auto choice =
      impl_->choose(static_cast<std::int32_t>(dests.size()) + 1, m);
  const auto tree = impl_->tree_for(root, dests, m);
  return from_collective(
      impl_->coll_engine->run(collectives::CollectiveKind::kReduce, tree, m),
      m, choice.k, choice.t1, static_cast<std::int32_t>(dests.size()));
}

Communicator::OpReport Communicator::allreduce(topo::HostId root,
                                               std::int64_t bytes) const {
  const std::int32_t m = impl_->packetize(bytes);
  const auto dests = impl_->everyone_but(root);
  const auto choice =
      impl_->choose(static_cast<std::int32_t>(dests.size()) + 1, m);
  const auto tree = impl_->tree_for(root, dests, m);
  return from_collective(
      impl_->coll_engine->run(collectives::CollectiveKind::kAllReduce, tree,
                              m),
      m, choice.k, choice.t1, static_cast<std::int32_t>(dests.size()));
}

}  // namespace nimcast::api
