#pragma once

#include <cstdint>

#include "topology/topology.hpp"

namespace nimcast::topo {

/// Two-level folded-Clos ("fat-tree") cluster fabric: `edge_switches`
/// leaf switches each hosting `hosts_per_edge` processors, fully
/// connected upward to `spine_switches` spines with `trunk` parallel
/// links per (edge, spine) pair.
///
/// This is the structured successor of the paper's random irregular NOW
/// fabrics; up*/down* routing rooted at a spine degenerates to the
/// natural up-to-spine/down-to-leaf routing, and the CCO ordering groups
/// each leaf's hosts — giving the REG-style experiments a third network
/// family with abundant path diversity.
struct FatTreeConfig {
  std::int32_t edge_switches = 8;
  std::int32_t spine_switches = 4;
  std::int32_t hosts_per_edge = 8;
  std::int32_t trunk = 1;  ///< parallel links per edge-spine pair
};

/// Switch ids: [0, edge_switches) are leaves, the rest are spines.
[[nodiscard]] Topology make_fat_tree(const FatTreeConfig& cfg);

/// The natural level function for up*/down* orientation on this fabric:
/// spines level 0, leaves level 1. Hand this to UpDownRouter /
/// MultipathUpDownRouter to make every spine an "up" target (BFS from a
/// single root would bury the other spines below the leaves and leave
/// exactly one legal shortest path per leaf pair).
[[nodiscard]] std::vector<std::int32_t> fat_tree_levels(
    const FatTreeConfig& cfg);

}  // namespace nimcast::topo
