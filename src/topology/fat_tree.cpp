#include "topology/fat_tree.hpp"

#include <stdexcept>
#include <string>

namespace nimcast::topo {

Topology make_fat_tree(const FatTreeConfig& cfg) {
  if (cfg.edge_switches < 1 || cfg.spine_switches < 1 ||
      cfg.hosts_per_edge < 1 || cfg.trunk < 1) {
    throw std::invalid_argument("make_fat_tree: non-positive sizes");
  }
  const std::int32_t switches = cfg.edge_switches + cfg.spine_switches;
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(cfg.edge_switches) *
                static_cast<std::size_t>(cfg.spine_switches) *
                static_cast<std::size_t>(cfg.trunk));
  for (SwitchId leaf = 0; leaf < cfg.edge_switches; ++leaf) {
    for (SwitchId spine = 0; spine < cfg.spine_switches; ++spine) {
      for (std::int32_t t = 0; t < cfg.trunk; ++t) {
        edges.push_back(Graph::Edge{leaf, cfg.edge_switches + spine});
      }
    }
  }
  std::vector<SwitchId> host_switch;
  host_switch.reserve(static_cast<std::size_t>(cfg.edge_switches) *
                      static_cast<std::size_t>(cfg.hosts_per_edge));
  for (SwitchId leaf = 0; leaf < cfg.edge_switches; ++leaf) {
    for (std::int32_t h = 0; h < cfg.hosts_per_edge; ++h) {
      host_switch.push_back(leaf);
    }
  }
  return Topology{Graph{switches, std::move(edges)}, std::move(host_switch),
                  "fat-tree(" + std::to_string(cfg.edge_switches) + "x" +
                      std::to_string(cfg.spine_switches) + ", " +
                      std::to_string(cfg.hosts_per_edge) + "h/leaf)"};
}

std::vector<std::int32_t> fat_tree_levels(const FatTreeConfig& cfg) {
  std::vector<std::int32_t> levels(
      static_cast<std::size_t>(cfg.edge_switches + cfg.spine_switches), 1);
  for (std::int32_t s = 0; s < cfg.spine_switches; ++s) {
    levels[static_cast<std::size_t>(cfg.edge_switches + s)] = 0;
  }
  return levels;
}

}  // namespace nimcast::topo
