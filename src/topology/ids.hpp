#pragma once

#include <cstdint>

namespace nimcast::topo {

/// Identifier vocabulary used across the stack.
///
/// Hosts (the paper's "processors"/"nodes") and switches are numbered
/// independently from 0. Links are undirected switch-switch cables; the
/// network layer derives two directed channels per link plus an
/// injection/ejection channel pair per host.
using HostId = std::int32_t;
using SwitchId = std::int32_t;
using LinkId = std::int32_t;
using PortId = std::int32_t;

inline constexpr std::int32_t kInvalidId = -1;

}  // namespace nimcast::topo
