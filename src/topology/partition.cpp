#include "topology/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace nimcast::topo {

std::vector<std::int32_t> partition_switches(const Graph& g,
                                             std::int32_t parts) {
  if (parts < 1) {
    throw std::invalid_argument("partition_switches: parts < 1");
  }
  const std::int32_t n = g.num_vertices();
  parts = std::min(parts, n);
  std::vector<std::int32_t> part(static_cast<std::size_t>(n), -1);
  if (parts <= 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }

  // Balanced quota: the first (n % parts) parts take one extra switch.
  std::int32_t assigned = 0;
  std::int32_t next_seed = 0;
  for (std::int32_t p = 0; p < parts; ++p) {
    const std::int32_t quota =
        n / parts + (p < n % parts ? 1 : 0);
    // gain[v]: links from v into the growing part; -1 marks assigned.
    std::vector<std::int32_t> gain(static_cast<std::size_t>(n), 0);
    std::int32_t size = 0;
    while (size < quota) {
      // Absorb the unassigned switch with the highest gain; seed a fresh
      // region (gain 0 everywhere) when the frontier is exhausted. Ties
      // fall to the lowest id, so the result is a pure function of the
      // graph.
      std::int32_t best = -1;
      for (std::int32_t v = 0; v < n; ++v) {
        if (part[static_cast<std::size_t>(v)] != -1) continue;
        if (best == -1 || gain[static_cast<std::size_t>(v)] >
                              gain[static_cast<std::size_t>(best)]) {
          best = v;
        }
      }
      if (best == -1) break;  // everything assigned (can't happen mid-quota)
      if (gain[static_cast<std::size_t>(best)] == 0) {
        // Frontier empty: seed at the lowest unassigned switch.
        while (part[static_cast<std::size_t>(next_seed)] != -1) ++next_seed;
        best = next_seed;
      }
      part[static_cast<std::size_t>(best)] = p;
      ++size;
      ++assigned;
      for (LinkId e : g.incident(best)) {
        const SwitchId w = g.edge(e).other(best);
        if (part[static_cast<std::size_t>(w)] == -1) {
          ++gain[static_cast<std::size_t>(w)];
        }
      }
    }
  }
  // Defensive: quota arithmetic covers all n, but keep the invariant
  // explicit — every switch must belong to a part.
  for (std::int32_t v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] == -1) {
      part[static_cast<std::size_t>(v)] = parts - 1;
      ++assigned;
    }
  }
  static_cast<void>(assigned);
  return part;
}

std::int64_t cut_links(const Graph& g, const std::vector<std::int32_t>& part) {
  std::int64_t cut = 0;
  for (const Graph::Edge& e : g.edges()) {
    if (part[static_cast<std::size_t>(e.a)] !=
        part[static_cast<std::size_t>(e.b)]) {
      ++cut;
    }
  }
  return cut;
}

}  // namespace nimcast::topo
