#include "topology/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace nimcast::topo {

std::vector<std::int32_t> partition_switches(const Graph& g,
                                             std::int32_t parts) {
  return partition_switches(g, parts, {});
}

std::vector<std::int32_t> partition_switches(
    const Graph& g, std::int32_t parts,
    const std::vector<std::uint64_t>& weights) {
  if (parts < 1) {
    throw std::invalid_argument("partition_switches: parts < 1");
  }
  const std::int32_t n = g.num_vertices();
  parts = std::min(parts, n);
  std::vector<std::int32_t> part(static_cast<std::size_t>(n), -1);
  if (parts <= 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }

  // Effective weights: zero counts as one (an idle switch still has to
  // live somewhere), and a mis-sized vector falls back to unit weights —
  // which makes this byte-identical to the unweighted overload.
  const bool weighted = weights.size() == static_cast<std::size_t>(n);
  const auto weight_of = [&](std::int32_t v) -> std::uint64_t {
    return weighted ? std::max<std::uint64_t>(
                          weights[static_cast<std::size_t>(v)], 1)
                    : 1;
  };
  std::uint64_t total = 0;
  for (std::int32_t v = 0; v < n; ++v) total += weight_of(v);

  // Balanced quota by weight: the first (total % parts) parts take one
  // extra unit. With unit weights this is the classic ceil(V / parts)
  // switch-count quota.
  std::int32_t next_seed = 0;
  for (std::int32_t p = 0; p < parts; ++p) {
    const std::uint64_t quota =
        total / static_cast<std::uint64_t>(parts) +
        (static_cast<std::uint64_t>(p) < total % static_cast<std::uint64_t>(parts)
             ? 1
             : 0);
    // gain[v]: links from v into the growing part; -1 marks assigned.
    std::vector<std::int32_t> gain(static_cast<std::size_t>(n), 0);
    std::uint64_t size = 0;
    while (size < quota) {
      // Absorb the unassigned switch with the highest gain; seed a fresh
      // region (gain 0 everywhere) when the frontier is exhausted. Ties
      // fall to the lowest id, so the result is a pure function of the
      // graph (and the weights).
      std::int32_t best = -1;
      for (std::int32_t v = 0; v < n; ++v) {
        if (part[static_cast<std::size_t>(v)] != -1) continue;
        if (best == -1 || gain[static_cast<std::size_t>(v)] >
                              gain[static_cast<std::size_t>(best)]) {
          best = v;
        }
      }
      if (best == -1) break;  // everything assigned (can't happen mid-quota)
      if (gain[static_cast<std::size_t>(best)] == 0) {
        // Frontier empty: seed at the lowest unassigned switch.
        while (part[static_cast<std::size_t>(next_seed)] != -1) ++next_seed;
        best = next_seed;
      }
      // A heavy switch that would blow the quota of an already-started
      // part is left for a later part (a just-seeded part takes it
      // regardless — every part absorbs at least one switch). Never
      // triggers with unit weights: size + 1 > quota implies the loop
      // already exited.
      if (size > 0 && size + weight_of(best) > quota) break;
      part[static_cast<std::size_t>(best)] = p;
      size += weight_of(best);
      for (LinkId e : g.incident(best)) {
        const SwitchId w = g.edge(e).other(best);
        if (part[static_cast<std::size_t>(w)] == -1) {
          ++gain[static_cast<std::size_t>(w)];
        }
      }
    }
  }
  // Leftovers (quota arithmetic covers everything under unit weights,
  // but the weighted early-stop can strand switches): every switch must
  // belong to a part.
  for (std::int32_t v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] == -1) {
      part[static_cast<std::size_t>(v)] = parts - 1;
    }
  }
  return part;
}

std::int64_t cut_links(const Graph& g, const std::vector<std::int32_t>& part) {
  std::int64_t cut = 0;
  for (const Graph::Edge& e : g.edges()) {
    if (part[static_cast<std::size_t>(e.a)] !=
        part[static_cast<std::size_t>(e.b)]) {
      ++cut;
    }
  }
  return cut;
}

}  // namespace nimcast::topo
