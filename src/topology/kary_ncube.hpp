#pragma once

#include <cstdint>
#include <vector>

#include "topology/topology.hpp"

namespace nimcast::topo {

/// k-ary n-cube (mesh or torus) of routers with one host per router.
///
/// This is the regular-network substrate the paper's Section 4.3.2 refers
/// to ("for k-ary n-cubes, the dimension-ordered chain can be used"), and
/// powers the REG extension experiments: 2D/3D meshes, tori and binary
/// hypercubes (k=2). Router r sits at coordinates digit-decomposed in base
/// `radix`; host h attaches to router h.
struct KAryNCubeConfig {
  std::int32_t radix = 4;       ///< k: nodes per dimension
  std::int32_t dimensions = 2;  ///< n
  bool wraparound = false;      ///< true = torus, false = mesh
};

[[nodiscard]] Topology make_kary_ncube(const KAryNCubeConfig& cfg);

/// Coordinate helpers shared with dimension-ordered routing.
[[nodiscard]] std::vector<std::int32_t> to_coords(std::int32_t node,
                                                  const KAryNCubeConfig& cfg);
[[nodiscard]] std::int32_t from_coords(const std::vector<std::int32_t>& coords,
                                       const KAryNCubeConfig& cfg);

}  // namespace nimcast::topo
