#pragma once

#include <string>
#include <vector>

#include "topology/graph.hpp"
#include "topology/ids.hpp"

namespace nimcast::topo {

/// A complete system interconnect: a switch graph plus host attachments.
///
/// This is the substrate every experiment runs on. The paper's evaluation
/// system — 64 processors on 16 eight-port switches — is one instance
/// (see `irregular.hpp`); k-ary n-cubes with integrated routers are another
/// (`kary_ncube.hpp`).
class Topology {
 public:
  /// `host_switch[h]` is the switch host `h` attaches to.
  Topology(Graph switches, std::vector<SwitchId> host_switch,
           std::string name);

  [[nodiscard]] const Graph& switches() const { return switches_; }
  [[nodiscard]] std::int32_t num_switches() const {
    return switches_.num_vertices();
  }
  [[nodiscard]] std::int32_t num_hosts() const {
    return static_cast<std::int32_t>(host_switch_.size());
  }
  [[nodiscard]] SwitchId switch_of(HostId h) const {
    return host_switch_[static_cast<std::size_t>(h)];
  }
  [[nodiscard]] const std::vector<SwitchId>& host_switches() const {
    return host_switch_;
  }
  /// Hosts attached to switch `s`, ascending.
  [[nodiscard]] std::vector<HostId> hosts_of(SwitchId s) const;

  /// Ports in use at switch `s`: attached hosts + incident links.
  [[nodiscard]] std::int32_t ports_used(SwitchId s) const;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  Graph switches_;
  std::vector<SwitchId> host_switch_;
  std::string name_;
};

}  // namespace nimcast::topo
