#include "topology/kary_ncube.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace nimcast::topo {
namespace {

std::int32_t checked_total(const KAryNCubeConfig& cfg) {
  if (cfg.radix < 2 || cfg.dimensions < 1) {
    throw std::invalid_argument("make_kary_ncube: radix>=2, dimensions>=1");
  }
  std::int64_t total = 1;
  for (std::int32_t d = 0; d < cfg.dimensions; ++d) {
    total *= cfg.radix;
    if (total > 1'000'000) {
      throw std::invalid_argument("make_kary_ncube: too many nodes");
    }
  }
  return static_cast<std::int32_t>(total);
}

}  // namespace

std::vector<std::int32_t> to_coords(std::int32_t node,
                                    const KAryNCubeConfig& cfg) {
  std::vector<std::int32_t> coords(static_cast<std::size_t>(cfg.dimensions));
  for (std::int32_t d = 0; d < cfg.dimensions; ++d) {
    coords[static_cast<std::size_t>(d)] = node % cfg.radix;
    node /= cfg.radix;
  }
  return coords;
}

std::int32_t from_coords(const std::vector<std::int32_t>& coords,
                         const KAryNCubeConfig& cfg) {
  std::int32_t node = 0;
  for (std::int32_t d = cfg.dimensions - 1; d >= 0; --d) {
    node = node * cfg.radix + coords[static_cast<std::size_t>(d)];
  }
  return node;
}

Topology make_kary_ncube(const KAryNCubeConfig& cfg) {
  const std::int32_t total = checked_total(cfg);
  std::vector<Graph::Edge> edges;
  for (std::int32_t v = 0; v < total; ++v) {
    auto coords = to_coords(v, cfg);
    for (std::int32_t d = 0; d < cfg.dimensions; ++d) {
      const std::int32_t c = coords[static_cast<std::size_t>(d)];
      // Emit each undirected link once: from the lower-coordinate side.
      if (c + 1 < cfg.radix) {
        coords[static_cast<std::size_t>(d)] = c + 1;
        edges.push_back(Graph::Edge{v, from_coords(coords, cfg)});
        coords[static_cast<std::size_t>(d)] = c;
      } else if (cfg.wraparound && cfg.radix > 2 && c == cfg.radix - 1) {
        coords[static_cast<std::size_t>(d)] = 0;
        edges.push_back(Graph::Edge{v, from_coords(coords, cfg)});
        coords[static_cast<std::size_t>(d)] = c;
      }
    }
  }
  std::vector<SwitchId> host_switch(static_cast<std::size_t>(total));
  std::iota(host_switch.begin(), host_switch.end(), 0);
  return Topology{Graph{total, std::move(edges)}, std::move(host_switch),
                  std::to_string(cfg.radix) + "-ary " +
                      std::to_string(cfg.dimensions) + "-cube" +
                      (cfg.wraparound ? " (torus)" : " (mesh)")};
}

}  // namespace nimcast::topo
