#include "topology/graph.hpp"

#include <queue>
#include <stdexcept>

namespace nimcast::topo {

bool SubgraphMask::any_dead() const {
  for (const bool d : dead_link) {
    if (d) return true;
  }
  for (const bool d : dead_switch) {
    if (d) return true;
  }
  return false;
}

Graph::Graph(std::int32_t num_vertices, std::vector<Edge> edges)
    : num_vertices_{num_vertices}, edges_{std::move(edges)} {
  if (num_vertices < 0) throw std::invalid_argument("Graph: negative size");
  for (const Edge& e : edges_) {
    if (e.a < 0 || e.a >= num_vertices || e.b < 0 || e.b >= num_vertices) {
      throw std::invalid_argument("Graph: edge endpoint out of range");
    }
    if (e.a == e.b) throw std::invalid_argument("Graph: self-loop");
  }
  // Build CSR incidence.
  offsets_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets_[static_cast<std::size_t>(e.a) + 1];
    ++offsets_[static_cast<std::size_t>(e.b) + 1];
  }
  for (std::size_t v = 1; v < offsets_.size(); ++v)
    offsets_[v] += offsets_[v - 1];
  incidence_.resize(static_cast<std::size_t>(offsets_.back()));
  std::vector<std::int32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    const auto ia = static_cast<std::size_t>(e.a);
    const auto ib = static_cast<std::size_t>(e.b);
    incidence_[static_cast<std::size_t>(cursor[ia]++)] = static_cast<LinkId>(i);
    incidence_[static_cast<std::size_t>(cursor[ib]++)] = static_cast<LinkId>(i);
  }
}

std::span<const LinkId> Graph::incident(SwitchId v) const {
  const auto lo =
      static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
  const auto hi =
      static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
  return {incidence_.data() + lo, hi - lo};
}

std::vector<std::int32_t> Graph::bfs_levels(SwitchId root) const {
  std::vector<std::int32_t> level(static_cast<std::size_t>(num_vertices_), -1);
  if (num_vertices_ == 0) return level;
  std::queue<SwitchId> q;
  level[static_cast<std::size_t>(root)] = 0;
  q.push(root);
  while (!q.empty()) {
    const SwitchId v = q.front();
    q.pop();
    for (LinkId e : incident(v)) {
      const SwitchId w = edge(e).other(v);
      auto& lw = level[static_cast<std::size_t>(w)];
      if (lw < 0) {
        lw = level[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }
  return level;
}

std::vector<std::int32_t> Graph::bfs_levels(SwitchId root,
                                            const SubgraphMask& mask) const {
  std::vector<std::int32_t> level(static_cast<std::size_t>(num_vertices_), -1);
  if (num_vertices_ == 0 || !mask.switch_alive(root)) return level;
  std::queue<SwitchId> q;
  level[static_cast<std::size_t>(root)] = 0;
  q.push(root);
  while (!q.empty()) {
    const SwitchId v = q.front();
    q.pop();
    for (LinkId e : incident(v)) {
      if (!mask.link_alive(e)) continue;
      const SwitchId w = edge(e).other(v);
      if (!mask.switch_alive(w)) continue;
      auto& lw = level[static_cast<std::size_t>(w)];
      if (lw < 0) {
        lw = level[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }
  return level;
}

bool Graph::connected() const {
  if (num_vertices_ <= 1) return true;
  const auto levels = bfs_levels(0);
  for (std::int32_t lv : levels) {
    if (lv < 0) return false;
  }
  return true;
}

}  // namespace nimcast::topo
