#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "topology/ids.hpp"

namespace nimcast::topo {

/// Undirected multigraph over switches.
///
/// Parallel links between the same pair of switches are allowed (the
/// irregular generator avoids them by default, but cluster interconnects do
/// trunk links, and routing treats each as an independent channel), and the
/// structure is immutable after construction so adjacency spans stay valid.
class Graph {
 public:
  struct Edge {
    SwitchId a = kInvalidId;
    SwitchId b = kInvalidId;
    [[nodiscard]] SwitchId other(SwitchId s) const { return s == a ? b : a; }
  };

  Graph(std::int32_t num_vertices, std::vector<Edge> edges);

  [[nodiscard]] std::int32_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] std::int32_t num_edges() const {
    return static_cast<std::int32_t>(edges_.size());
  }
  [[nodiscard]] const Edge& edge(LinkId e) const {
    return edges_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Link ids incident to `v`.
  [[nodiscard]] std::span<const LinkId> incident(SwitchId v) const;

  /// Vertex degree (counting parallel links individually).
  [[nodiscard]] std::int32_t degree(SwitchId v) const {
    return static_cast<std::int32_t>(incident(v).size());
  }

  [[nodiscard]] bool connected() const;

  /// BFS levels from `root`; unreachable vertices get -1.
  [[nodiscard]] std::vector<std::int32_t> bfs_levels(SwitchId root) const;

 private:
  std::int32_t num_vertices_;
  std::vector<Edge> edges_;
  // CSR adjacency: incidence_[offsets_[v] .. offsets_[v+1]) are link ids.
  std::vector<std::int32_t> offsets_;
  std::vector<LinkId> incidence_;
};

}  // namespace nimcast::topo
