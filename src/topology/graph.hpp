#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "topology/ids.hpp"

namespace nimcast::topo {

/// Liveness mask over a graph's switches and links: the surviving
/// subgraph after fault injection. Empty vectors mean "everything alive",
/// so the default-constructed mask is free to consult — the zero-fault
/// fast path never allocates or branches on per-element state.
struct SubgraphMask {
  std::vector<bool> dead_link;    ///< indexed by LinkId when non-empty
  std::vector<bool> dead_switch;  ///< indexed by SwitchId when non-empty

  [[nodiscard]] bool link_alive(LinkId e) const {
    return dead_link.empty() || !dead_link[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] bool switch_alive(SwitchId s) const {
    return dead_switch.empty() || !dead_switch[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] bool any_dead() const;
};

/// Undirected multigraph over switches.
///
/// Parallel links between the same pair of switches are allowed (the
/// irregular generator avoids them by default, but cluster interconnects do
/// trunk links, and routing treats each as an independent channel), and the
/// structure is immutable after construction so adjacency spans stay valid.
class Graph {
 public:
  struct Edge {
    SwitchId a = kInvalidId;
    SwitchId b = kInvalidId;
    [[nodiscard]] SwitchId other(SwitchId s) const { return s == a ? b : a; }
  };

  Graph(std::int32_t num_vertices, std::vector<Edge> edges);

  [[nodiscard]] std::int32_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] std::int32_t num_edges() const {
    return static_cast<std::int32_t>(edges_.size());
  }
  [[nodiscard]] const Edge& edge(LinkId e) const {
    return edges_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Link ids incident to `v`.
  [[nodiscard]] std::span<const LinkId> incident(SwitchId v) const;

  /// Vertex degree (counting parallel links individually).
  [[nodiscard]] std::int32_t degree(SwitchId v) const {
    return static_cast<std::int32_t>(incident(v).size());
  }

  [[nodiscard]] bool connected() const;

  /// BFS levels from `root`; unreachable vertices get -1.
  [[nodiscard]] std::vector<std::int32_t> bfs_levels(SwitchId root) const;

  /// Mask-aware BFS levels: traverses only links whose link and both
  /// endpoint switches survive `mask`. A dead root yields all -1.
  [[nodiscard]] std::vector<std::int32_t> bfs_levels(
      SwitchId root, const SubgraphMask& mask) const;

 private:
  std::int32_t num_vertices_;
  std::vector<Edge> edges_;
  // CSR adjacency: incidence_[offsets_[v] .. offsets_[v+1]) are link ids.
  std::vector<std::int32_t> offsets_;
  std::vector<LinkId> incidence_;
};

}  // namespace nimcast::topo
