#include "topology/irregular.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

namespace nimcast::topo {
namespace {

std::vector<SwitchId> round_robin_hosts(const IrregularConfig& cfg) {
  std::vector<SwitchId> host_switch(static_cast<std::size_t>(cfg.num_hosts));
  for (std::int32_t h = 0; h < cfg.num_hosts; ++h) {
    host_switch[static_cast<std::size_t>(h)] = h % cfg.num_switches;
  }
  return host_switch;
}

/// One attempt at a configuration-model pairing of the spare ports.
/// Returns std::nullopt-equivalent via empty optional pattern: a non-simple
/// or disconnected draw yields no value and the caller retries.
bool try_draw(const IrregularConfig& cfg,
              const std::vector<std::int32_t>& spare, sim::Rng& rng,
              std::vector<Graph::Edge>& out) {
  std::vector<SwitchId> stubs;
  for (SwitchId s = 0; s < cfg.num_switches; ++s) {
    for (std::int32_t p = 0; p < spare[static_cast<std::size_t>(s)]; ++p) {
      stubs.push_back(s);
    }
  }
  if (stubs.size() % 2 != 0) stubs.pop_back();

  rng.shuffle(stubs);
  out.clear();
  std::set<std::pair<SwitchId, SwitchId>> seen;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    SwitchId a = stubs[i];
    SwitchId b = stubs[i + 1];
    if (a == b) return false;  // self-loop; reject the whole draw
    if (a > b) std::swap(a, b);
    if (!cfg.allow_parallel_links && !seen.emplace(a, b).second) return false;
    out.push_back(Graph::Edge{a, b});
  }
  return true;
}

}  // namespace

Topology make_irregular(const IrregularConfig& cfg, sim::Rng& rng) {
  if (cfg.num_switches < 1 || cfg.num_hosts < 1 || cfg.ports_per_switch < 1) {
    throw std::invalid_argument("make_irregular: non-positive sizes");
  }
  auto host_switch = round_robin_hosts(cfg);

  std::vector<std::int32_t> spare(static_cast<std::size_t>(cfg.num_switches),
                                  cfg.ports_per_switch);
  for (SwitchId s : host_switch) {
    if (--spare[static_cast<std::size_t>(s)] < 0) {
      throw std::invalid_argument(
          "make_irregular: switch out of ports for hosts");
    }
  }
  if (cfg.num_switches > 1) {
    for (std::int32_t sp : spare) {
      if (sp < cfg.min_switch_links) {
        throw std::invalid_argument(
            "make_irregular: a switch has fewer spare ports (" +
            std::to_string(sp) + ") than min_switch_links");
      }
    }
  }

  constexpr int kMaxAttempts = 100'000;
  std::vector<Graph::Edge> edges;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    if (!try_draw(cfg, spare, rng, edges)) continue;
    Graph g{cfg.num_switches, edges};
    if (!g.connected()) continue;
    return Topology{std::move(g), std::move(host_switch),
                    "irregular(" + std::to_string(cfg.num_switches) + "sw," +
                        std::to_string(cfg.num_hosts) + "h," +
                        std::to_string(cfg.ports_per_switch) + "p)"};
  }
  throw std::runtime_error(
      "make_irregular: no simple connected wiring found; "
      "config likely infeasible");
}

}  // namespace nimcast::topo
