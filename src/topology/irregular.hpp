#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "topology/topology.hpp"

namespace nimcast::topo {

/// Parameters for random irregular switch-based networks.
///
/// Defaults match the paper's evaluation system (Section 5.2): 64
/// processors connected by 16 eight-port switches. Hosts are spread
/// round-robin over switches; each switch's remaining ports are wired to
/// other switches at random under a connectivity constraint, modelling the
/// "random network switch interconnection topologies" the paper averages
/// over.
struct IrregularConfig {
  std::int32_t num_switches = 16;
  std::int32_t num_hosts = 64;
  std::int32_t ports_per_switch = 8;
  /// Minimum inter-switch links per switch; keeps degenerate stars out of
  /// the random draw. Must leave room for the round-robin host share.
  std::int32_t min_switch_links = 2;
  /// Permit parallel links between a switch pair (off by default).
  bool allow_parallel_links = false;
};

/// Generates a random connected irregular topology. Throws
/// std::invalid_argument when the config is infeasible (e.g. more hosts
/// than total spare ports). Uses rejection sampling: draws a random
/// port-pairing and retries until it is simple (unless parallel links are
/// allowed) and connected.
[[nodiscard]] Topology make_irregular(const IrregularConfig& cfg,
                                      sim::Rng& rng);

}  // namespace nimcast::topo
