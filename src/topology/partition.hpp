#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace nimcast::topo {

/// Partitions the switch graph into `parts` balanced regions for the
/// sharded simulation engine, minimizing (greedily) the number of
/// cut links — every cut link is a cross-shard mailbox in the sharded
/// run, so fewer cut links means fewer window-barrier handoffs.
///
/// Deterministic: greedy BFS region growing. Each part is seeded at the
/// lowest-numbered unassigned switch and grown one switch at a time,
/// always absorbing the frontier switch with the most links into the
/// growing part (ties: lowest id), until the part reaches its balanced
/// quota of ceil(V / parts). Disconnected leftovers seed fresh regions
/// within the same part, so every switch is always assigned.
///
/// Returns one part index in [0, effective_parts) per switch, where
/// effective_parts = min(parts, num_vertices). `parts` must be >= 1.
[[nodiscard]] std::vector<std::int32_t> partition_switches(const Graph& g,
                                                           std::int32_t parts);

/// Load-aware variant: balances total switch *weight* per part instead
/// of switch count, with the same greedy BFS growth and deterministic
/// tie-breaks. The sharded engine feeds measured per-switch event counts
/// from a previous replication back in here, so hot regions of the
/// fabric get spread across shards. A weight of zero counts as one
/// (every switch must land somewhere and stay mobile); an empty or
/// mis-sized `weights` vector means unit weights — byte-identical to
/// the unweighted overload.
[[nodiscard]] std::vector<std::int32_t> partition_switches(
    const Graph& g, std::int32_t parts,
    const std::vector<std::uint64_t>& weights);

/// Number of links whose endpoints land in different parts — the
/// quantity the heuristic minimizes, exposed for tests and diagnostics.
[[nodiscard]] std::int64_t cut_links(const Graph& g,
                                     const std::vector<std::int32_t>& part);

}  // namespace nimcast::topo
