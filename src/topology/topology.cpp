#include "topology/topology.hpp"

#include <stdexcept>
#include <utility>

namespace nimcast::topo {

Topology::Topology(Graph switches, std::vector<SwitchId> host_switch,
                   std::string name)
    : switches_{std::move(switches)},
      host_switch_{std::move(host_switch)},
      name_{std::move(name)} {
  for (SwitchId s : host_switch_) {
    if (s < 0 || s >= switches_.num_vertices()) {
      throw std::invalid_argument("Topology: host attached to missing switch");
    }
  }
}

std::vector<HostId> Topology::hosts_of(SwitchId s) const {
  std::vector<HostId> out;
  for (std::size_t h = 0; h < host_switch_.size(); ++h) {
    if (host_switch_[h] == s) out.push_back(static_cast<HostId>(h));
  }
  return out;
}

std::int32_t Topology::ports_used(SwitchId s) const {
  std::int32_t used = switches_.degree(s);
  for (SwitchId hs : host_switch_) {
    if (hs == s) ++used;
  }
  return used;
}

}  // namespace nimcast::topo
