#pragma once

#include <cstdint>

#include "core/ordering.hpp"
#include "routing/route_table.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

namespace nimcast::core {

/// Quantifies how contention-free a base ordering is (paper Section
/// 4.3.2 / Definition of contention-free ordering).
///
/// An ordering is contention-free iff for all chain positions
/// a <= b < c <= d, the route chain[a] -> chain[b] shares no directed
/// channel with chain[c] -> chain[d]. That is exactly the pattern the
/// Fig. 11 construction generates: rightward messages inside disjoint
/// chain segments. The paper notes no fully contention-free ordering
/// exists for up*/down*-routed irregular networks, so the interesting
/// quantity is the *violation rate* — which this module measures, either
/// exhaustively (small systems) or by sampling.
struct OrderingQuality {
  std::int64_t checked = 0;     ///< quadruples examined
  std::int64_t violations = 0;  ///< quadruples whose routes share a channel

  [[nodiscard]] double violation_rate() const {
    return checked == 0 ? 0.0
                        : static_cast<double>(violations) /
                              static_cast<double>(checked);
  }
  [[nodiscard]] bool contention_free() const { return violations == 0; }
};

/// Exhaustive check over all O(n^4) quadruples. Feasible up to ~20 hosts;
/// throws beyond 32 to protect callers from accidental hour-long loops.
[[nodiscard]] OrderingQuality assess_ordering_exhaustive(
    const topo::Topology& topology, const routing::RouteTable& routes,
    const Chain& chain);

/// Monte-Carlo estimate over `samples` uniformly drawn quadruples.
[[nodiscard]] OrderingQuality assess_ordering_sampled(
    const topo::Topology& topology, const routing::RouteTable& routes,
    const Chain& chain, std::int64_t samples, sim::Rng& rng);

}  // namespace nimcast::core
