#include "core/optimal_k.hpp"

#include <stdexcept>

namespace nimcast::core {

OptimalChoice optimal_k(std::int32_t n, std::int32_t m, CoverageTable& cov) {
  if (n < 1) throw std::invalid_argument("optimal_k: n < 1");
  if (m < 1) throw std::invalid_argument("optimal_k: m < 1");
  if (n == 1) return OptimalChoice{1, 0, 0};
  const std::int32_t k_max = ceil_log2(static_cast<std::uint64_t>(n));
  OptimalChoice best;
  bool have = false;
  for (std::int32_t k = 1; k <= std::max<std::int32_t>(1, k_max); ++k) {
    const std::int32_t t1 = cov.min_steps(static_cast<std::uint64_t>(n), k);
    const std::int64_t total =
        t1 + static_cast<std::int64_t>(m - 1) * static_cast<std::int64_t>(k);
    // `<=` implements the larger-k tie-break (k ascends).
    if (!have || total <= best.total_steps) {
      best = OptimalChoice{k, t1, total};
      have = true;
    }
  }
  return best;
}

OptimalChoice optimal_k(std::int32_t n, std::int32_t m) {
  CoverageTable cov;
  return optimal_k(n, m, cov);
}

OptimalKTable::OptimalKTable(std::int32_t max_n, std::int32_t max_m)
    : max_n_{max_n}, max_m_{max_m} {
  if (max_n < 2 || max_m < 1) {
    throw std::invalid_argument("OptimalKTable: max_n >= 2, max_m >= 1");
  }
  CoverageTable cov;
  per_n_.resize(static_cast<std::size_t>(max_n) + 1);
  for (std::int32_t n = 2; n <= max_n; ++n) {
    auto& segments = per_n_[static_cast<std::size_t>(n)];
    for (std::int32_t m = 1; m <= max_m; ++m) {
      const OptimalChoice c = optimal_k(n, m, cov);
      if (segments.empty() || segments.back().k != c.k) {
        segments.push_back(Segment{m, c.k, c.t1});
      }
    }
  }
}

OptimalChoice OptimalKTable::lookup(std::int32_t n, std::int32_t m) const {
  if (n < 2 || n > max_n_ || m < 1 || m > max_m_) {
    throw std::out_of_range("OptimalKTable::lookup: (n, m) outside table");
  }
  const auto& segments = per_n_[static_cast<std::size_t>(n)];
  const Segment* chosen = &segments.front();
  for (const Segment& s : segments) {
    if (s.m_from <= m) chosen = &s;
  }
  OptimalChoice out;
  out.k = chosen->k;
  out.t1 = chosen->t1;
  out.total_steps = chosen->t1 + static_cast<std::int64_t>(m - 1) * chosen->k;
  return out;
}

std::size_t OptimalKTable::stored_entries() const {
  std::size_t total = 0;
  for (const auto& v : per_n_) total += v.size();
  return total;
}

}  // namespace nimcast::core
