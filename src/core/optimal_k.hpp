#pragma once

#include <cstdint>
#include <vector>

#include "core/coverage.hpp"

namespace nimcast::core {

/// Result of the Theorem 3 optimization for one (n, m).
struct OptimalChoice {
  std::int32_t k = 1;            ///< optimal fan-out bound
  std::int32_t t1 = 0;           ///< steps for the first packet
  std::int64_t total_steps = 0;  ///< t1 + (m - 1) * k
};

/// Solves the paper's Theorem 3: over k in [1, ceil(log2 n)], minimize
/// total multicast steps t_1(n, k) + (m - 1) * k for a multicast set of
/// size `n` (source included, n >= 1) and `m` >= 1 packets.
///
/// No closed form exists (Section 4.3.1); the interval is scanned. Ties
/// are broken toward the *larger* k, which (a) matches the paper's
/// observation that the plain binomial tree (k = ceil(log2 n)) is optimal
/// at m = 1 and (b) only arises when the extra fan-out is free in steps.
[[nodiscard]] OptimalChoice optimal_k(std::int32_t n, std::int32_t m,
                                      CoverageTable& cov);

/// Convenience overload with a private table.
[[nodiscard]] OptimalChoice optimal_k(std::int32_t n, std::int32_t m);

/// Precomputed optimal-k lookup for all 2 <= n <= max_n, 1 <= m <= max_m —
/// the "table requiring less than O(n*m) memory" the paper proposes NIs
/// carry (Section 4.3.1). Exploits the paper's observation that the
/// optimal k is identical over ranges of m by storing, per n, the
/// breakpoints where k changes.
class OptimalKTable {
 public:
  OptimalKTable(std::int32_t max_n, std::int32_t max_m);

  [[nodiscard]] OptimalChoice lookup(std::int32_t n, std::int32_t m) const;
  [[nodiscard]] std::int32_t max_n() const { return max_n_; }
  [[nodiscard]] std::int32_t max_m() const { return max_m_; }

  /// Number of (m-breakpoint, k) pairs stored — the memory figure the
  /// paper's feasibility argument is about.
  [[nodiscard]] std::size_t stored_entries() const;

 private:
  struct Segment {
    std::int32_t m_from;  ///< this k applies for m >= m_from ...
    std::int32_t k;       ///< ... until the next segment's m_from
    std::int32_t t1;
  };

  std::int32_t max_n_;
  std::int32_t max_m_;
  std::vector<std::vector<Segment>> per_n_;  ///< indexed by n
};

}  // namespace nimcast::core
