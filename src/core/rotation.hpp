#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/host_tree.hpp"
#include "core/ordering.hpp"
#include "routing/route_table.hpp"
#include "routing/up_down.hpp"
#include "topology/topology.hpp"

namespace nimcast::core {

/// Knobs of the tree-rotation planner (see plan_rotation).
struct RotationConfig {
  /// Rotation members requested (R). 1 keeps the paper's fixed tree.
  std::int32_t rotation_trees = 1;
  /// Fan-out bound every member tree is built with. Streaming keeps one
  /// k across members so the R = 1 baseline is an apples-to-apples
  /// comparison point.
  std::int32_t fanout_bound = 2;
  /// Salted route alternatives probed per chain offset (in addition to
  /// the primary table).
  std::int32_t candidate_salts = 3;
  /// Chain rotations probed per member.
  std::int32_t candidate_offsets = 4;
  /// Base value the per-candidate salts derive from.
  std::uint64_t salt_base = UINT64_C(0x9e3779b97f4a7c15);
};

/// One tree of the rotation set: packets of stream class r travel down
/// member r's tree using member r's route table.
struct RotationMember {
  HostTree tree;
  /// Route table the member's packets are injected under; null means the
  /// primary (engine-bound) table.
  std::shared_ptr<const routing::RouteTable> table;
  /// Sorted directed switch-channel ids the member's tree edges cross
  /// (routing::edge_channel_footprint; NI channels excluded — all
  /// members share them by construction).
  std::vector<std::int32_t> footprint;
  /// Rotation applied to the destination part of the participant chain,
  /// or -1 when the member used the load-balanced binding (sub-tree
  /// ranks assigned by descending fan-out to hosts by ascending
  /// cumulative NI work).
  std::int32_t chain_offset = 0;
  /// Salt of the member's route table; 0 marks the primary table.
  std::uint64_t salt = 0;
  /// |footprint ∩ union(previous members)| / |footprint| — the greedy
  /// decorrelation score this member was admitted with (0 for member 0).
  double overlap_fraction = 0.0;
};

/// The rotation set: member 0 is always the paper's fixed k-binomial
/// tree over the participant chain on the primary routes, so a plan of
/// size 1 *is* the pre-streaming engine configuration.
struct RotationPlan {
  std::vector<RotationMember> members;
  std::int32_t requested = 1;
  std::int32_t fanout_bound = 1;
  /// Max over hosts of cumulative NI coprocessor work per window of
  /// size() packets (units: default-parameter microseconds, t_rcv = 2
  /// per receive + t_snd = 3 per child send summed over members). The
  /// predicted sustained per-packet period at saturation is
  /// ni_work_bound / size() — the quantity the planner minimizes.
  std::int32_t ni_work_bound = 0;

  [[nodiscard]] std::int32_t size() const {
    return static_cast<std::int32_t>(members.size());
  }
  /// Mean/max admitted overlap fraction over members 1..R-1 (0 when the
  /// plan degenerated to the fixed tree).
  [[nodiscard]] double overlap_mean() const;
  [[nodiscard]] double overlap_max() const;
};

/// Plans a rotation set of up to `config.rotation_trees` channel-
/// decorrelated k-binomial trees over `participants` (a source-first
/// chain, see arrange_participants).
///
/// Member 0 is the fixed tree. Members r >= 1 are *virtual-root*
/// members: the source sends each class-r packet to a single relay
/// which roots a k-binomial tree over a re-bound destination chain —
/// rotating both the relay and the high-fanout interior hosts, which
/// is what moves the NI forwarding bottleneck off any single host at
/// saturation. Candidate chains per member are the *load-balanced
/// binding* (sub-tree ranks by descending fan-out assigned to hosts by
/// ascending cumulative NI work — interior ranks of a k-binomial are
/// spread uniformly along the chain, so no rotation of the fixed rank
/// shape can decorrelate forwarding roles) plus plain chain rotations
/// probing outward from the member's nominal slot r*D/R (which keep
/// CCO adjacency). Each (chain, route salt) candidate is scored
/// lexicographically by (predicted cumulative NI bottleneck if
/// admitted, channel-footprint overlap fraction with the chosen set,
/// offset, salt) and the greedy minimum wins — fully deterministic,
/// and the first component is the saturation-throughput model.
///
/// Candidates whose directed edge set *and* footprint both duplicate an
/// already-chosen member are skipped, so when fewer than R genuinely
/// distinct trees exist (tiny or degenerate fabrics) the plan returns
/// the maximal feasible set rather than silently duplicating members.
///
/// Salted tables are compressed and lazily materialized
/// (routing::make_salted_table): planning R trees materializes only the
/// switch pairs the candidate tree edges touch.
[[nodiscard]] RotationPlan plan_rotation(const topo::Topology& topology,
                                         const routing::RouteTable& primary,
                                         const routing::UpDownRouter& base,
                                         const Chain& participants,
                                         const RotationConfig& config);

/// Outcome of replan_rotation: the patched plan plus repair telemetry.
struct ReplanResult {
  RotationPlan plan;
  /// Members re-planned over their surviving chain.
  std::int32_t rebuilt = 0;
  /// Members excised entirely (dead root or < 2 surviving nodes, or no
  /// footprint clear of the dead set).
  std::int32_t dropped = 0;
};

/// Incremental post-fault patch of a rotation plan. Members untouched by
/// the dead set are kept verbatim (primary-table members get their
/// footprint recomputed on the post-rebuild `primary`, since fault
/// repair rebinds the primary table); members whose tree contains a host
/// from `dead_hosts` or whose channel footprint intersects
/// `dead_channels` (sorted directed switch-channel ids) are re-planned
/// over their surviving chain on `primary` — salted alternatives are
/// stale after a fault — preserving the virtual-root shape for members
/// r >= 1 and re-scoring the result with the same cumulative NI-work
/// bound as plan_rotation. This is what keeps run_streaming at R-way
/// rotation throughput through a fault instead of collapsing to one
/// surviving tree. Fully deterministic; kept members come first in the
/// patched plan (original order), then rebuilt members (original order).
[[nodiscard]] ReplanResult replan_rotation(
    const topo::Topology& topology, const routing::RouteTable& primary,
    const RotationPlan& plan, const std::vector<std::int32_t>& dead_channels,
    const std::vector<topo::HostId>& dead_hosts);

}  // namespace nimcast::core
