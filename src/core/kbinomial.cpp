#include "core/kbinomial.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace nimcast::core {
namespace {

/// Covers chain segment [lo..hi] from the node at `lo`, which has `s`
/// steps of budget. Precondition: N(s, k) >= hi - lo + 1.
///
/// Child at send step i may root a subtree of up to N(s-i, k) nodes.
/// When the segment is smaller than N(s, k), the deficit is absorbed by
/// the *earliest* children (largest capacity, most slack): sizes are
/// assigned from the last child backward, each taking its full capacity,
/// and whatever remains goes to earlier children. This keeps the root's
/// child count maximal — no descendant ever has more children than the
/// root, which is what makes the Theorem 1 pipeline gap equal c_R and
/// matches the shapes of the paper's Fig. 9.
void build_segment(RankTree& tree, CoverageTable& cov, std::int32_t lo,
                   std::int32_t hi, std::int32_t s, std::int32_t k) {
  const auto span = static_cast<std::uint64_t>(hi - lo);
  if (span == 0) return;
  const std::int32_t max_children = std::min(k, s);
  if (max_children <= 0) {
    throw std::logic_error("make_kbinomial: budget exhausted (bug)");
  }
  std::vector<std::uint64_t> size(static_cast<std::size_t>(max_children) + 1,
                                  0);
  std::uint64_t remaining = span;
  for (std::int32_t i = max_children; i >= 1 && remaining > 0; --i) {
    const std::uint64_t cap = cov.coverage(s - i, k);
    size[static_cast<std::size_t>(i)] = std::min(cap, remaining);
    remaining -= size[static_cast<std::size_t>(i)];
  }
  if (remaining != 0) {
    throw std::logic_error("make_kbinomial: segment not coverable (bug)");
  }
  // Children in send order (step 1 first) take segments right to left,
  // per the Fig. 11 geometry. Zero-size steps are skipped; skipping only
  // grants later children extra step budget, never less.
  std::int32_t right = hi;
  for (std::int32_t i = 1; i <= max_children; ++i) {
    const auto take =
        static_cast<std::int32_t>(size[static_cast<std::size_t>(i)]);
    if (take == 0) continue;
    const std::int32_t child = right - take + 1;
    tree.children[static_cast<std::size_t>(lo)].push_back(child);
    tree.parent[static_cast<std::size_t>(child)] = lo;
    build_segment(tree, cov, child, right, s - i, k);
    right = child - 1;
  }
  if (right != lo) {
    throw std::logic_error("make_kbinomial: segment not covered (bug)");
  }
}

}  // namespace

RankTree make_kbinomial(std::int32_t n, std::int32_t k) {
  if (n < 1) throw std::invalid_argument("make_kbinomial: n < 1");
  if (k < 1) throw std::invalid_argument("make_kbinomial: k < 1");
  RankTree tree;
  tree.parent.assign(static_cast<std::size_t>(n), -1);
  tree.children.assign(static_cast<std::size_t>(n), {});
  if (n == 1) return tree;
  CoverageTable cov;
  const std::int32_t s = cov.min_steps(static_cast<std::uint64_t>(n), k);
  build_segment(tree, cov, 0, n - 1, s, k);
  return tree;
}

RankTree make_binomial(std::int32_t n) {
  if (n < 1) throw std::invalid_argument("make_binomial: n < 1");
  const std::int32_t k =
      std::max<std::int32_t>(1, ceil_log2(static_cast<std::uint64_t>(n)));
  return make_kbinomial(n, k);
}

RankTree make_linear(std::int32_t n) { return make_kbinomial(n, 1); }

}  // namespace nimcast::core
