#pragma once

#include <cstdint>

#include "core/coverage.hpp"
#include "core/tree.hpp"

namespace nimcast::core {

/// Builds the k-binomial tree over n chain-ordered ranks (Definition 1 +
/// the Fig. 11 construction).
///
/// The source (rank 0) sends first to the node N(s-1, k) places from the
/// right end of the chain, then N(s-2, k) places left of that recipient,
/// and so on for up to k children; each child recursively covers the
/// chain segment to its right. Because routes between disjoint chain
/// segments are link-disjoint on a contention-free ordering, the
/// resulting tree is depth-contention-free.
///
/// Requires n >= 1 and k >= 1. The tree completes a single-packet
/// multicast in exactly t_1(n, k) steps and no vertex exceeds k children.
[[nodiscard]] RankTree make_kbinomial(std::int32_t n, std::int32_t k);

/// The conventional binomial tree: recursive doubling with unbounded
/// fan-out, i.e. the k-binomial tree with k = ceil(log2 n). Optimal for
/// single-packet multicast (McKinley et al.), not for multi-packet FPFS
/// multicast (paper Section 2.6).
[[nodiscard]] RankTree make_binomial(std::int32_t n);

/// The linear tree (chain): the k-binomial tree with k = 1. The paper's
/// Figure 5(b) counterexample showing binomial is not optimal under
/// packetization.
[[nodiscard]] RankTree make_linear(std::int32_t n);

}  // namespace nimcast::core
