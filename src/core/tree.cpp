#include "core/tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace nimcast::core {

std::int32_t RankTree::max_children() const {
  std::size_t best = 0;
  for (const auto& c : children) best = std::max(best, c.size());
  return static_cast<std::int32_t>(best);
}

void RankTree::validate() const {
  const auto n = static_cast<std::size_t>(size());
  if (n == 0) throw std::logic_error("RankTree: empty");
  if (children.size() != n) {
    throw std::logic_error("RankTree: parent/children size mismatch");
  }
  if (parent[0] != -1) throw std::logic_error("RankTree: rank 0 has a parent");
  std::vector<bool> seen(n, false);
  seen[0] = true;
  std::size_t reached = 1;
  // Children lists must form a consistent, acyclic covering: walk in BFS
  // order from the root.
  std::vector<std::int32_t> frontier{0};
  while (!frontier.empty()) {
    std::vector<std::int32_t> next;
    for (std::int32_t v : frontier) {
      for (std::int32_t c : children[static_cast<std::size_t>(v)]) {
        if (c < 0 || c >= size()) {
          throw std::logic_error("RankTree: child out of range");
        }
        if (seen[static_cast<std::size_t>(c)]) {
          throw std::logic_error("RankTree: node reached twice");
        }
        if (parent[static_cast<std::size_t>(c)] != v) {
          throw std::logic_error("RankTree: parent link mismatch");
        }
        seen[static_cast<std::size_t>(c)] = true;
        ++reached;
        next.push_back(c);
      }
    }
    frontier = std::move(next);
  }
  if (reached != n) throw std::logic_error("RankTree: unreachable nodes");
}

std::vector<std::int32_t> RankTree::single_packet_steps() const {
  std::vector<std::int32_t> step(static_cast<std::size_t>(size()), 0);
  // Parents are always processed before children when walking ranks in
  // tree (BFS) order; do an explicit traversal to avoid assuming rank
  // order correlates with depth.
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const std::int32_t v = stack.back();
    stack.pop_back();
    const auto& kids = children[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < kids.size(); ++i) {
      step[static_cast<std::size_t>(kids[i])] =
          step[static_cast<std::size_t>(v)] + static_cast<std::int32_t>(i) + 1;
      stack.push_back(kids[i]);
    }
  }
  return step;
}

std::int32_t RankTree::steps_to_complete() const {
  const auto steps = single_packet_steps();
  return *std::max_element(steps.begin(), steps.end());
}

namespace {

void render(const RankTree& t, std::int32_t v, std::string& out) {
  out += std::to_string(v);
  const auto& kids = t.children[static_cast<std::size_t>(v)];
  if (kids.empty()) return;
  out += " -> (";
  for (std::size_t i = 0; i < kids.size(); ++i) {
    if (i > 0) out += ", ";
    render(t, kids[i], out);
  }
  out += ")";
}

}  // namespace

std::string RankTree::to_string() const {
  std::string out;
  render(*this, 0, out);
  return out;
}

}  // namespace nimcast::core
