#include "core/ordering_quality.hpp"

#include <algorithm>
#include <stdexcept>

namespace nimcast::core {
namespace {

bool routes_conflict(const topo::Topology& topology,
                     const routing::RouteTable& routes, topo::HostId a,
                     topo::HostId b, topo::HostId c, topo::HostId d) {
  return !routes.disjoint(topology.switches(), a, b, c, d);
}

}  // namespace

OrderingQuality assess_ordering_exhaustive(const topo::Topology& topology,
                                           const routing::RouteTable& routes,
                                           const Chain& chain) {
  const auto n = static_cast<std::int64_t>(chain.size());
  if (n > 32) {
    throw std::invalid_argument(
        "assess_ordering_exhaustive: > 32 hosts; use the sampled variant");
  }
  OrderingQuality q;
  for (std::int64_t a = 0; a < n; ++a) {
    for (std::int64_t b = a; b < n; ++b) {
      for (std::int64_t c = b + 1; c < n; ++c) {
        for (std::int64_t d = c; d < n; ++d) {
          ++q.checked;
          if (routes_conflict(topology, routes,
                              chain[static_cast<std::size_t>(a)],
                              chain[static_cast<std::size_t>(b)],
                              chain[static_cast<std::size_t>(c)],
                              chain[static_cast<std::size_t>(d)])) {
            ++q.violations;
          }
        }
      }
    }
  }
  return q;
}

OrderingQuality assess_ordering_sampled(const topo::Topology& topology,
                                        const routing::RouteTable& routes,
                                        const Chain& chain,
                                        std::int64_t samples, sim::Rng& rng) {
  const auto n = chain.size();
  if (n < 4) throw std::invalid_argument("assess_ordering_sampled: n < 4");
  OrderingQuality q;
  for (std::int64_t s = 0; s < samples; ++s) {
    // Draw four distinct positions and sort them into a <= b < c <= d
    // (collapse to "a <= b" / "c <= d" pairs by using the middle split).
    auto pos = rng.sample_without_replacement(n, 4);
    std::sort(pos.begin(), pos.end());
    ++q.checked;
    if (routes_conflict(topology, routes, chain[pos[0]], chain[pos[1]],
                        chain[pos[2]], chain[pos[3]])) {
      ++q.violations;
    }
  }
  return q;
}

}  // namespace nimcast::core
