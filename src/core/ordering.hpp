#pragma once

#include <vector>

#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/topology.hpp"

namespace nimcast::core {

/// A chain: a permutation of all hosts used as the base ordering for
/// contention-free tree construction (paper Section 4.3.2).
using Chain = std::vector<topo::HostId>;

/// Chain-concatenated ordering for irregular up*/down*-routed networks.
///
/// Follows the CCO idea of the paper's reference [5]: switches are
/// visited by a depth-first, left-to-right traversal of the up*/down* BFS
/// tree (children in ascending id order), and each switch contributes its
/// attached hosts consecutively. Hosts in disjoint subtrees then occupy
/// disjoint chain ranges and their mutual routes avoid each other's
/// subtree links, which is the property the recursive Fig. 11
/// construction needs. (The reference's exact construction is not public;
/// DESIGN.md documents this substitution.)
[[nodiscard]] Chain cco_ordering(const topo::Topology& topology,
                                 const routing::UpDownRouter& router);

/// Dimension-ordered chain for k-ary n-cubes: hosts sorted
/// lexicographically by coordinates, most significant dimension last in
/// routing order — which for our node numbering is simply ascending host
/// id. Contention-free for e-cube routing (McKinley et al.).
[[nodiscard]] Chain dimension_chain(const topo::Topology& topology);

/// Uniformly random permutation — the "no ordering discipline" baseline
/// for the ordering ablation.
[[nodiscard]] Chain random_ordering(std::int32_t num_hosts, sim::Rng& rng);

/// Restricts `chain` to a multicast set and rotates it so `source` comes
/// first (the paper's "without loss of generality, the source is the
/// first node in the ordering"). `dests` must not contain `source`;
/// duplicates are rejected. The result lists source at index 0 followed
/// by the destinations in (rotated) chain order.
[[nodiscard]] Chain arrange_participants(
    const Chain& chain, topo::HostId source,
    const std::vector<topo::HostId>& dests);

}  // namespace nimcast::core
