#include "core/ordering.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace nimcast::core {

Chain cco_ordering(const topo::Topology& topology,
                   const routing::UpDownRouter& router) {
  const auto& g = topology.switches();
  const auto& level = router.levels();
  const auto n = static_cast<std::size_t>(g.num_vertices());

  // Up-tree children: v's parent is its lowest-id strictly-higher
  // neighbor (with BFS levels this is exactly the level-1 parent).
  // Switches at the minimum level are forest roots — a single one for
  // BFS orientations, every spine for explicit level functions.
  std::int32_t min_level = level[0];
  for (std::int32_t lv : level) min_level = std::min(min_level, lv);
  std::vector<std::vector<topo::SwitchId>> tree_children(n);
  std::vector<topo::SwitchId> roots;
  for (topo::SwitchId v = 0; v < g.num_vertices(); ++v) {
    if (level[static_cast<std::size_t>(v)] == min_level) {
      roots.push_back(v);
      continue;
    }
    topo::SwitchId parent = topo::kInvalidId;
    for (topo::LinkId e : g.incident(v)) {
      const topo::SwitchId w = g.edge(e).other(v);
      if (level[static_cast<std::size_t>(w)] <
          level[static_cast<std::size_t>(v)]) {
        if (parent == topo::kInvalidId || w < parent) parent = w;
      }
    }
    if (parent == topo::kInvalidId) {
      throw std::logic_error("cco_ordering: level structure broken");
    }
    tree_children[static_cast<std::size_t>(parent)].push_back(v);
  }
  for (auto& kids : tree_children) std::sort(kids.begin(), kids.end());

  // Preorder DFS from each root (ascending id); hosts of each switch
  // appended in ascending id order.
  Chain chain;
  chain.reserve(static_cast<std::size_t>(topology.num_hosts()));
  std::vector<topo::SwitchId> stack{roots.rbegin(), roots.rend()};
  while (!stack.empty()) {
    const topo::SwitchId v = stack.back();
    stack.pop_back();
    for (topo::HostId h : topology.hosts_of(v)) chain.push_back(h);
    const auto& kids = tree_children[static_cast<std::size_t>(v)];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  if (chain.size() != static_cast<std::size_t>(topology.num_hosts())) {
    throw std::logic_error("cco_ordering: chain misses hosts");
  }
  return chain;
}

Chain dimension_chain(const topo::Topology& topology) {
  Chain chain(static_cast<std::size_t>(topology.num_hosts()));
  std::iota(chain.begin(), chain.end(), 0);
  return chain;
}

Chain random_ordering(std::int32_t num_hosts, sim::Rng& rng) {
  Chain chain(static_cast<std::size_t>(num_hosts));
  std::iota(chain.begin(), chain.end(), 0);
  rng.shuffle(chain);
  return chain;
}

Chain arrange_participants(const Chain& chain, topo::HostId source,
                           const std::vector<topo::HostId>& dests) {
  std::unordered_set<topo::HostId> want{dests.begin(), dests.end()};
  if (want.size() != dests.size()) {
    throw std::invalid_argument("arrange_participants: duplicate destination");
  }
  if (want.contains(source)) {
    throw std::invalid_argument("arrange_participants: source in dests");
  }
  want.insert(source);

  // Participants in chain order.
  Chain members;
  members.reserve(want.size());
  for (topo::HostId h : chain) {
    if (want.contains(h)) members.push_back(h);
  }
  if (members.size() != want.size()) {
    throw std::invalid_argument(
        "arrange_participants: participant missing from chain");
  }
  // Rotate so the source leads.
  const auto it = std::find(members.begin(), members.end(), source);
  std::rotate(members.begin(), it, members.end());
  return members;
}

}  // namespace nimcast::core
