#include "core/dot_export.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nimcast::core {

std::string to_dot(const RankTree& tree) {
  std::ostringstream os;
  os << "digraph ranktree {\n  rankdir=TB;\n  node [shape=circle];\n";
  os << "  0 [shape=doublecircle];\n";
  const auto steps = tree.single_packet_steps();
  for (std::int32_t v = 0; v < tree.size(); ++v) {
    for (std::int32_t c : tree.children[static_cast<std::size_t>(v)]) {
      os << "  " << v << " -> " << c << " [label=\"["
         << steps[static_cast<std::size_t>(c)] << "]\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const HostTree& tree) {
  std::ostringstream os;
  os << "digraph hosttree {\n  rankdir=TB;\n  node [shape=circle];\n";
  os << "  h" << tree.root << " [shape=doublecircle,label=\"" << tree.root
     << "\"];\n";
  for (topo::HostId h : tree.nodes) {
    if (h != tree.root) {
      os << "  h" << h << " [label=\"" << h << "\"];\n";
    }
  }
  for (topo::HostId h : tree.nodes) {
    const auto& kids = tree.children.at(h);
    for (std::size_t i = 0; i < kids.size(); ++i) {
      os << "  h" << h << " -> h" << kids[i] << " [label=\"" << i + 1
         << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const topo::Topology& topology) {
  std::ostringstream os;
  os << "graph system {\n  layout=neato;\n  overlap=false;\n";
  for (topo::SwitchId s = 0; s < topology.num_switches(); ++s) {
    os << "  s" << s << " [shape=box,label=\"sw" << s << "\"];\n";
  }
  for (topo::HostId h = 0; h < topology.num_hosts(); ++h) {
    os << "  h" << h << " [shape=circle,fontsize=9,label=\"" << h
       << "\"];\n";
    os << "  h" << h << " -- s" << topology.switch_of(h)
       << " [style=dotted];\n";
  }
  const auto& g = topology.switches();
  for (topo::LinkId e = 0; e < g.num_edges(); ++e) {
    os << "  s" << g.edge(e).a << " -- s" << g.edge(e).b << ";\n";
  }
  os << "}\n";
  return os.str();
}

void write_dot(const std::string& dot, const std::string& path) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("write_dot: cannot open " + path);
  out << dot;
}

}  // namespace nimcast::core
