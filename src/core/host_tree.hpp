#pragma once

#include <unordered_map>
#include <vector>

#include "core/ordering.hpp"
#include "core/tree.hpp"
#include "topology/ids.hpp"

namespace nimcast::core {

/// A multicast tree bound to concrete hosts: rank r of a RankTree mapped
/// to `order[r]`. This is what gets installed into NI forwarding tables.
struct HostTree {
  topo::HostId root = topo::kInvalidId;
  /// Children in send order; every participant has an entry (leaves map
  /// to empty vectors).
  std::unordered_map<topo::HostId, std::vector<topo::HostId>> children;
  /// All participants, root first, in rank order.
  std::vector<topo::HostId> nodes;

  [[nodiscard]] std::int32_t size() const {
    return static_cast<std::int32_t>(nodes.size());
  }
  [[nodiscard]] std::int32_t root_children() const {
    return static_cast<std::int32_t>(children.at(root).size());
  }

  /// Binds `tree` (over ranks) to the participant arrangement `order`
  /// (source first — see arrange_participants). Sizes must match.
  [[nodiscard]] static HostTree bind(const RankTree& tree, const Chain& order);
};

}  // namespace nimcast::core
