#include "core/host_tree.hpp"

#include <stdexcept>

namespace nimcast::core {

HostTree HostTree::bind(const RankTree& tree, const Chain& order) {
  if (static_cast<std::size_t>(tree.size()) != order.size()) {
    throw std::invalid_argument("HostTree::bind: size mismatch");
  }
  HostTree out;
  out.root = order.front();
  out.nodes = order;
  for (std::int32_t r = 0; r < tree.size(); ++r) {
    const topo::HostId h = order[static_cast<std::size_t>(r)];
    auto& kids = out.children[h];
    for (std::int32_t c : tree.children[static_cast<std::size_t>(r)]) {
      kids.push_back(order[static_cast<std::size_t>(c)]);
    }
  }
  return out;
}

}  // namespace nimcast::core
