#include "core/coverage.hpp"

#include <stdexcept>

namespace nimcast::core {
namespace {

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return (s >= kCoverageInfinity || s < a) ? kCoverageInfinity : s;
}

}  // namespace

std::uint64_t CoverageTable::coverage(std::int32_t s, std::int32_t k) {
  if (s < 0) throw std::invalid_argument("coverage: s < 0");
  if (k < 1) throw std::invalid_argument("coverage: k < 1");
  if (s <= k) {
    return s >= 62 ? kCoverageInfinity : (UINT64_C(1) << s);
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(s))
                             << 32) |
                            static_cast<std::uint32_t>(k);
  if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
  std::uint64_t total = 1;
  for (std::int32_t i = 1; i <= k; ++i) {
    total = saturating_add(total, coverage(s - i, k));
  }
  memo_.emplace(key, total);
  return total;
}

std::int32_t CoverageTable::min_steps(std::uint64_t n, std::int32_t k) {
  if (n < 1) throw std::invalid_argument("min_steps: n < 1");
  if (k < 1) throw std::invalid_argument("min_steps: k < 1");
  std::int32_t s = 0;
  while (coverage(s, k) < n) {
    ++s;
    if (s > 1'000'000) {
      throw std::logic_error("min_steps: runaway search (bug)");
    }
  }
  return s;
}

std::int32_t ceil_log2(std::uint64_t n) {
  if (n < 1) throw std::invalid_argument("ceil_log2: n < 1");
  std::int32_t bits = 0;
  std::uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace nimcast::core
