#include "core/rotation.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "core/kbinomial.hpp"
#include "routing/route_alternatives.hpp"

namespace nimcast::core {

namespace {

using HostEdge = std::pair<topo::HostId, topo::HostId>;

/// Directed (parent -> child) edges of a tree, sorted — the member
/// identity the duplicate check compares.
std::vector<HostEdge> tree_edges(const HostTree& tree) {
  std::vector<HostEdge> edges;
  edges.reserve(tree.nodes.size());
  for (topo::HostId h : tree.nodes) {
    for (topo::HostId c : tree.children.at(h)) edges.emplace_back(h, c);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Virtual-root member tree: source -> relay (one copy per packet at
/// the source), relay roots the k-binomial over the rotated chain.
HostTree make_virtual_root_tree(const RankTree& sub, const Chain& dests_rot,
                                topo::HostId source) {
  HostTree subtree = HostTree::bind(sub, dests_rot);
  HostTree tree;
  tree.root = source;
  tree.nodes.reserve(dests_rot.size() + 1);
  tree.nodes.push_back(source);
  tree.nodes.insert(tree.nodes.end(), subtree.nodes.begin(),
                    subtree.nodes.end());
  tree.children = std::move(subtree.children);
  tree.children[source] = {subtree.root};
  return tree;
}

}  // namespace

double RotationPlan::overlap_mean() const {
  if (members.size() < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t r = 1; r < members.size(); ++r) {
    sum += members[r].overlap_fraction;
  }
  return sum / static_cast<double>(members.size() - 1);
}

double RotationPlan::overlap_max() const {
  double best = 0.0;
  for (std::size_t r = 1; r < members.size(); ++r) {
    best = std::max(best, members[r].overlap_fraction);
  }
  return best;
}

namespace {

/// Per-host NI coprocessor work one member tree charges per packet of
/// its stream class, in the default parameterization's microseconds:
/// t_rcv = 2 for every non-root node, t_snd = 3 per child. The planner
/// minimizes the running maximum of this over members — at saturation
/// the sustained period per packet is bound_max / R, so this heuristic
/// is the throughput model (it predicts measured streaming throughput
/// to within a few percent; see bench_streaming_broadcast).
std::map<topo::HostId, std::int32_t> member_ni_work(const HostTree& tree) {
  std::map<topo::HostId, std::int32_t> work;
  for (topo::HostId h : tree.nodes) {
    work[h] = (h == tree.root ? 0 : 2) +
              3 * static_cast<std::int32_t>(tree.children.at(h).size());
  }
  return work;
}

std::int32_t ni_work_max(const std::map<topo::HostId, std::int32_t>& work) {
  std::int32_t best = 0;
  for (const auto& [h, w] : work) best = std::max(best, w);
  return best;
}

}  // namespace

RotationPlan plan_rotation(const topo::Topology& topology,
                           const routing::RouteTable& primary,
                           const routing::UpDownRouter& base,
                           const Chain& participants,
                           const RotationConfig& config) {
  const auto n = static_cast<std::int32_t>(participants.size());
  if (n < 2) {
    throw std::invalid_argument("plan_rotation: need >= 2 participants");
  }
  const std::int32_t requested = std::max(config.rotation_trees, 1);
  const std::int32_t k = std::max(config.fanout_bound, 1);
  const topo::HostId source = participants.front();
  const Chain dests(participants.begin() + 1, participants.end());
  const auto num_dests = static_cast<std::int32_t>(dests.size());

  RotationPlan plan;
  plan.requested = requested;
  plan.fanout_bound = k;

  RotationMember fixed;
  fixed.tree = HostTree::bind(make_kbinomial(n, k), participants);
  fixed.footprint = routing::edge_channel_footprint(
      topology, primary, tree_edges(fixed.tree));
  plan.members.push_back(std::move(fixed));

  // Cumulative per-host NI work over the chosen members; the running
  // max is the plan's predicted saturation bottleneck (per R packets).
  std::map<topo::HostId, std::int32_t> cum_work =
      member_ni_work(plan.members[0].tree);
  plan.ni_work_bound = ni_work_max(cum_work);
  if (requested == 1) return plan;

  // Shared across members: the (n-1)-rank subtree shape, the chosen
  // edge sets (duplicate check), the running footprint union (greedy
  // score) and a per-salt table cache.
  const RankTree sub = make_kbinomial(num_dests, k);
  // Sub-tree ranks ordered by descending fan-out (ties: ascending rank)
  // — the assignment order of the load-balanced binding candidate.
  std::vector<std::int32_t> rank_by_fanout(
      static_cast<std::size_t>(num_dests));
  for (std::int32_t i = 0; i < num_dests; ++i) {
    rank_by_fanout[static_cast<std::size_t>(i)] = i;
  }
  std::stable_sort(rank_by_fanout.begin(), rank_by_fanout.end(),
                   [&sub](std::int32_t a, std::int32_t b) {
                     return sub.children[static_cast<std::size_t>(a)].size() >
                            sub.children[static_cast<std::size_t>(b)].size();
                   });
  std::vector<std::vector<HostEdge>> chosen_edges;
  chosen_edges.push_back(tree_edges(plan.members[0].tree));
  std::vector<std::int32_t> claimed = plan.members[0].footprint;
  std::map<std::uint64_t, std::shared_ptr<const routing::RouteTable>> tables;
  const auto table_for =
      [&](std::uint64_t salt) -> std::shared_ptr<const routing::RouteTable> {
    if (salt == 0) return nullptr;  // primary
    auto it = tables.find(salt);
    if (it != tables.end()) return it->second;
    auto table = routing::make_salted_table(topology, base, salt);
    tables.emplace(salt, table);
    return table;
  };

  const std::int32_t num_offsets =
      std::min(std::max(config.candidate_offsets, 1), num_dests);
  const std::int32_t num_salts = std::max(config.candidate_salts, 0);

  for (std::int32_t r = 1; r < requested; ++r) {
    // Candidate chains. First the load-balanced binding (offset -1):
    // the sub-tree's high-fanout ranks go to the hosts with the least
    // cumulative NI work, so interior forwarding duty rotates across
    // members even though interior ranks are spread uniformly along the
    // chain (no rotation of a fixed rank shape can decorrelate them).
    // Then plain chain rotations probing outward from the member's
    // nominal slot r*D/R, which preserve CCO adjacency.
    std::vector<std::pair<std::int32_t, Chain>> candidates;
    {
      std::vector<std::int32_t> host_by_load(
          static_cast<std::size_t>(num_dests));
      for (std::int32_t i = 0; i < num_dests; ++i) {
        host_by_load[static_cast<std::size_t>(i)] = i;
      }
      std::stable_sort(host_by_load.begin(), host_by_load.end(),
                       [&](std::int32_t a, std::int32_t b) {
                         return cum_work.at(dests[static_cast<std::size_t>(
                                    a)]) <
                                cum_work.at(
                                    dests[static_cast<std::size_t>(b)]);
                       });
      Chain balanced(static_cast<std::size_t>(num_dests));
      for (std::int32_t j = 0; j < num_dests; ++j) {
        const auto jz = static_cast<std::size_t>(j);
        balanced[static_cast<std::size_t>(rank_by_fanout[jz])] =
            dests[static_cast<std::size_t>(host_by_load[jz])];
      }
      candidates.emplace_back(-1, std::move(balanced));
    }
    const std::int32_t slot =
        static_cast<std::int32_t>((static_cast<std::int64_t>(r) * num_dests) /
                                  requested);
    for (std::int32_t j = 0; j < num_offsets; ++j) {
      const std::int32_t offset = (slot + j) % num_dests;
      Chain dests_rot;
      dests_rot.reserve(dests.size());
      dests_rot.insert(dests_rot.end(),
                       dests.begin() + offset, dests.end());
      dests_rot.insert(dests_rot.end(), dests.begin(),
                       dests.begin() + offset);
      candidates.emplace_back(offset, std::move(dests_rot));
    }

    bool found = false;
    RotationMember best;
    std::map<topo::HostId, std::int32_t> best_work;
    std::int32_t best_bottleneck = 0;
    double best_overlap = 0.0;
    std::int32_t best_offset = 0;
    std::uint64_t best_salt_ix = 0;
    for (const auto& [offset, chain] : candidates) {
      HostTree tree = make_virtual_root_tree(sub, chain, source);
      const std::vector<HostEdge> edges = tree_edges(tree);
      // Predicted saturation bottleneck if this candidate is admitted:
      // the max cumulative NI work any host would carry per R packets.
      std::map<topo::HostId, std::int32_t> work = member_ni_work(tree);
      std::int32_t bottleneck = 0;
      for (const auto& [h, w] : work) {
        bottleneck = std::max(bottleneck, cum_work.at(h) + w);
      }
      for (std::int32_t s = 0; s <= num_salts; ++s) {
        const std::uint64_t salt =
            s == 0 ? 0
                   : config.salt_base + static_cast<std::uint64_t>(s);
        const auto table = table_for(salt);
        const routing::RouteTable& routes = table ? *table : primary;
        std::vector<std::int32_t> footprint =
            routing::edge_channel_footprint(topology, routes, edges);
        bool duplicate = false;
        for (std::size_t c = 0; c < chosen_edges.size(); ++c) {
          if (chosen_edges[c] == edges &&
              plan.members[c].footprint == footprint) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        const double overlap =
            footprint.empty()
                ? 0.0
                : static_cast<double>(
                      routing::footprint_intersection(footprint, claimed)) /
                      static_cast<double>(footprint.size());
        const auto key = std::make_tuple(
            bottleneck, overlap, offset, static_cast<std::uint64_t>(s));
        if (!found ||
            key < std::make_tuple(best_bottleneck, best_overlap, best_offset,
                                  best_salt_ix)) {
          found = true;
          best_bottleneck = bottleneck;
          best_overlap = overlap;
          best_offset = offset;
          best_salt_ix = static_cast<std::uint64_t>(s);
          best.tree = tree;
          best.table = table;
          best.footprint = std::move(footprint);
          best.chain_offset = offset;
          best.salt = salt;
          best.overlap_fraction = overlap;
          best_work = work;
        }
      }
    }
    // Every candidate duplicated a chosen member: the fabric offers
    // fewer than R distinct trees. Return the maximal feasible set.
    if (!found) break;
    chosen_edges.push_back(tree_edges(best.tree));
    claimed = routing::footprint_union(claimed, best.footprint);
    for (const auto& [h, w] : best_work) cum_work[h] += w;
    plan.members.push_back(std::move(best));
  }
  // The bound is the running max over admitted members; per-packet
  // sustained period at saturation is ni_work_bound / size().
  plan.ni_work_bound = ni_work_max(cum_work);
  return plan;
}

ReplanResult replan_rotation(const topo::Topology& topology,
                             const routing::RouteTable& primary,
                             const RotationPlan& plan,
                             const std::vector<std::int32_t>& dead_channels,
                             const std::vector<topo::HostId>& dead_hosts) {
  ReplanResult out;
  out.plan.requested = plan.requested;
  out.plan.fanout_bound = plan.fanout_bound;
  const std::int32_t k = std::max(plan.fanout_bound, 1);
  const auto host_dead = [&](topo::HostId h) {
    return std::find(dead_hosts.begin(), dead_hosts.end(), h) !=
           dead_hosts.end();
  };

  std::map<topo::HostId, std::int32_t> cum_work;
  std::vector<std::int32_t> claimed;
  std::vector<std::size_t> broken;
  for (std::size_t r = 0; r < plan.members.size(); ++r) {
    const RotationMember& m = plan.members[r];
    const bool dead_node = std::any_of(m.tree.nodes.begin(),
                                       m.tree.nodes.end(), host_dead);
    if (dead_node ||
        routing::footprint_intersection(m.footprint, dead_channels) > 0) {
      broken.push_back(r);
      continue;
    }
    RotationMember kept = m;
    if (kept.table == nullptr) {
      // The primary table is rebound after a fault rebuild; recompute the
      // footprint on the routes the member's packets will actually take,
      // and re-check it against the dead set (no rebuild => still stale).
      kept.footprint = routing::edge_channel_footprint(topology, primary,
                                                       tree_edges(kept.tree));
      if (routing::footprint_intersection(kept.footprint, dead_channels) >
          0) {
        broken.push_back(r);
        continue;
      }
    }
    for (const auto& [h, w] : member_ni_work(kept.tree)) cum_work[h] += w;
    claimed = routing::footprint_union(claimed, kept.footprint);
    out.plan.members.push_back(std::move(kept));
  }

  for (const std::size_t r : broken) {
    const RotationMember& m = plan.members[r];
    if (host_dead(m.tree.root)) {
      ++out.dropped;
      continue;
    }
    Chain chain;
    chain.reserve(m.tree.nodes.size());
    for (topo::HostId h : m.tree.nodes) {
      if (!host_dead(h)) chain.push_back(h);
    }
    if (chain.size() < 2) {
      ++out.dropped;
      continue;
    }
    RotationMember nb;
    const auto n = static_cast<std::int32_t>(chain.size());
    if (r == 0) {
      nb.tree = HostTree::bind(make_kbinomial(n, k), chain);
    } else {
      const Chain dests_rot(chain.begin() + 1, chain.end());
      nb.tree = make_virtual_root_tree(make_kbinomial(n - 1, k), dests_rot,
                                       chain.front());
    }
    nb.footprint = routing::edge_channel_footprint(topology, primary,
                                                   tree_edges(nb.tree));
    if (routing::footprint_intersection(nb.footprint, dead_channels) > 0) {
      // The primary was not rebuilt around this fault; a rebuilt member
      // would just feed packets back into dead channels.
      ++out.dropped;
      continue;
    }
    nb.chain_offset = m.chain_offset;
    nb.salt = 0;
    nb.overlap_fraction =
        nb.footprint.empty()
            ? 0.0
            : static_cast<double>(
                  routing::footprint_intersection(nb.footprint, claimed)) /
                  static_cast<double>(nb.footprint.size());
    for (const auto& [h, w] : member_ni_work(nb.tree)) cum_work[h] += w;
    claimed = routing::footprint_union(claimed, nb.footprint);
    out.plan.members.push_back(std::move(nb));
    ++out.rebuilt;
  }
  out.plan.ni_work_bound = ni_work_max(cum_work);
  return out;
}

}  // namespace nimcast::core
