#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nimcast::core {

/// A multicast tree over *ranks* 0..n-1, rank 0 being the source.
///
/// Ranks are positions in a (contention-free) chain ordering of the
/// participants; `HostTree` later binds them to concrete hosts. Children
/// lists are in *send order* — the order in which a node transmits to its
/// children — which both the step model and the NI disciplines honor, and
/// which the contention-free construction (paper Fig. 11) prescribes:
/// the first child is the one whose subtree lies farthest down the chain.
struct RankTree {
  std::vector<std::int32_t> parent;                 ///< parent[0] == -1
  std::vector<std::vector<std::int32_t>> children;  ///< send order

  [[nodiscard]] std::int32_t size() const {
    return static_cast<std::int32_t>(parent.size());
  }
  [[nodiscard]] std::int32_t root_children() const {
    return children.empty() ? 0
                            : static_cast<std::int32_t>(children[0].size());
  }
  /// Maximum children count over all nodes — the k of a k-binomial tree.
  [[nodiscard]] std::int32_t max_children() const;

  /// Structural validation: every non-root has exactly one parent, edges
  /// are consistent, the tree is connected and acyclic. Throws on
  /// violation; used by tests and the builders' postconditions.
  void validate() const;

  /// Step at which each rank receives a single-packet multicast under the
  /// paper's step model: a node that received at step t sends to its i-th
  /// child (1-based, send order) at step t + i. Rank 0 holds the packet
  /// at step 0.
  [[nodiscard]] std::vector<std::int32_t> single_packet_steps() const;

  /// max(single_packet_steps) — the paper's t_1 for this tree.
  [[nodiscard]] std::int32_t steps_to_complete() const;

  /// Human-readable rendering, e.g. "0 -> (2 -> (3), 1)".
  [[nodiscard]] std::string to_string() const;
};

}  // namespace nimcast::core
