#pragma once

#include <string>

#include "core/host_tree.hpp"
#include "core/tree.hpp"
#include "topology/topology.hpp"

namespace nimcast::core {

/// Graphviz DOT renderings of the library's structures — for papers,
/// debugging and the examples. Render with e.g.
/// `dot -Tsvg tree.dot -o tree.svg`.

/// A rank tree; edges are labeled with the send step of the paper's
/// single-packet schedule, so the drawing reads like the paper's Figs. 5
/// and 9 (numbers in brackets).
[[nodiscard]] std::string to_dot(const RankTree& tree);

/// A host-bound tree; node labels are host ids, the root is doubled.
[[nodiscard]] std::string to_dot(const HostTree& tree);

/// The physical system: boxes for switches, circles for hosts.
[[nodiscard]] std::string to_dot(const topo::Topology& topology);

/// Writes any of the above to a file. Throws on I/O failure.
void write_dot(const std::string& dot, const std::string& path);

}  // namespace nimcast::core
