#pragma once

#include <cstdint>
#include <unordered_map>

namespace nimcast::core {

/// Saturation value for coverage counts: once a k-binomial tree covers
/// this many nodes it covers "everything we will ever ask about".
inline constexpr std::uint64_t kCoverageInfinity = UINT64_C(1) << 62;

/// N(s, k) and t_1(n, k) — the paper's Lemma 1 machinery.
///
/// N(s, k) is the number of nodes (source included) a k-binomial tree
/// covers in s steps:
///
///     N(s, k) = 2^s                               for s <= k
///     N(s, k) = 1 + sum_{i=1..k} N(s - i, k)      for s >  k
///
/// Values are memoized and saturate at kCoverageInfinity, so callers can
/// compare without overflow. t_1(n, k) is the minimum s with
/// N(s, k) >= n: the number of steps a single-packet multicast over the
/// k-binomial tree needs to reach n - 1 destinations.
class CoverageTable {
 public:
  /// N(s, k); requires s >= 0, k >= 1.
  [[nodiscard]] std::uint64_t coverage(std::int32_t s, std::int32_t k);

  /// t_1(n, k): minimum steps to cover a multicast set of size n
  /// (source included); requires n >= 1, k >= 1.
  [[nodiscard]] std::int32_t min_steps(std::uint64_t n, std::int32_t k);

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> memo_;
};

/// ceil(log2(n)) for n >= 1; the step count of the unrestricted binomial
/// tree and the upper end of the paper's optimal-k search interval.
[[nodiscard]] std::int32_t ceil_log2(std::uint64_t n);

}  // namespace nimcast::core
