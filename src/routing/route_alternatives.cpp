#include "routing/route_alternatives.hpp"

#include <algorithm>

#include "routing/multipath_up_down.hpp"
#include "routing/routing.hpp"

namespace nimcast::routing {

std::shared_ptr<const RouteTable> make_salted_table(
    const topo::Topology& topology, const UpDownRouter& base,
    std::uint64_t salt) {
  auto router = std::make_shared<const MultipathUpDownRouter>(
      topology.switches(), base.levels(), salt);
  return std::make_shared<const RouteTable>(topology, router, /*epoch=*/0,
                                            RouteStorage::kCompressed);
}

std::vector<std::int32_t> edge_channel_footprint(
    const topo::Topology& topology, const RouteTable& table,
    const std::vector<std::pair<topo::HostId, topo::HostId>>& edges) {
  std::vector<std::int32_t> channels;
  const std::int32_t vcs = table.virtual_channels();
  for (const auto& [parent, child] : edges) {
    const SwitchRoute& route = table.path(parent, child);
    for (std::int32_t c :
         route_channels(topology.switches(), route, vcs)) {
      channels.push_back(c);
    }
  }
  std::sort(channels.begin(), channels.end());
  channels.erase(std::unique(channels.begin(), channels.end()),
                 channels.end());
  return channels;
}

std::size_t footprint_intersection(const std::vector<std::int32_t>& a,
                                   const std::vector<std::int32_t>& b) {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

std::vector<std::int32_t> footprint_union(const std::vector<std::int32_t>& a,
                                          const std::vector<std::int32_t>& b) {
  std::vector<std::int32_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace nimcast::routing
