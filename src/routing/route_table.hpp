#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "routing/routing.hpp"
#include "topology/topology.hpp"

namespace nimcast::routing {

/// How a RouteTable stores its routes.
enum class RouteStorage : std::uint8_t {
  /// All-pairs host routes materialized at construction: O(hosts²)
  /// SwitchRoute objects. Simple, no router kept alive, but neither the
  /// build time nor the memory survives a 1024-host fabric.
  kEager,
  /// Compressed: one slot per *switch pair* (hosts on the same switch
  /// share it), each materialized lazily on first use behind a
  /// generation-tagged flat cache. Reachability comes from the router's
  /// per-switch component map, so the hot reachable() path never routes.
  /// The generating router must outlive the table (the owning-router
  /// constructor takes care of that).
  kCompressed,
};

/// All-pairs host-level routes, precomputed once per (topology, router).
///
/// Host routes are switch routes between the attached switches; hosts on
/// the same switch route through that single switch (zero link hops, but
/// still one injection and one ejection channel in the network model).
///
/// Pairs the router cannot connect (a partitioned surviving subgraph
/// after faults) are recorded as unreachable rather than throwing: check
/// `reachable()` before `path()`. Tables rebuilt after a fault carry an
/// `epoch` so consumers can tell which generation of routes produced a
/// result.
///
/// Both storage modes are bit-identical in every query — same routes,
/// same reachability verdicts — because both ultimately ask the same
/// deterministic router (enforced by tests/routing/test_route_table_lazy
/// on every seed topology, pre- and post-fault). Compressed tables are
/// safe to share across testbed worker threads: concurrent first-touch
/// materialization is synchronized, and a published route is immutable.
class RouteTable {
 public:
  /// Non-owning constructor. In kEager mode the router is only used
  /// during construction; in kCompressed mode the caller must keep it
  /// alive for the table's lifetime.
  RouteTable(const topo::Topology& topology, const Router& router,
             std::int32_t epoch = 0,
             RouteStorage storage = RouteStorage::kEager);

  /// Owning constructor for compressed tables whose router would
  /// otherwise be a temporary (the fault-repair rebuild path).
  RouteTable(const topo::Topology& topology,
             std::shared_ptr<const Router> router, std::int32_t epoch = 0,
             RouteStorage storage = RouteStorage::kCompressed);

  /// Only meaningful when `reachable(src, dst)`; unreachable pairs hold
  /// an empty placeholder route.
  [[nodiscard]] const SwitchRoute& path(topo::HostId src,
                                        topo::HostId dst) const {
    if (lazy_) return lazy_path(src, dst);
    return routes_[index(src, dst)];
  }

  [[nodiscard]] bool reachable(topo::HostId src, topo::HostId dst) const {
    if (lazy_) {
      const auto a = component(topology_->switch_of(src));
      return a >= 0 && a == component(topology_->switch_of(dst));
    }
    return reachable_[index(src, dst)] != 0;
  }

  /// True when every host pair has a legal route (always the case before
  /// any fault partitions the fabric).
  [[nodiscard]] bool fully_connected() const { return unreachable_pairs_ == 0; }

  [[nodiscard]] std::int64_t unreachable_pairs() const {
    return unreachable_pairs_;
  }

  /// Route generation: 0 for the pristine fabric, bumped by each
  /// fault-time rebuild.
  [[nodiscard]] std::int32_t epoch() const { return epoch_; }

  [[nodiscard]] std::int32_t num_hosts() const { return num_hosts_; }

  /// Virtual channels the generating router uses; the network provisions
  /// this many per directed physical channel.
  [[nodiscard]] std::int32_t virtual_channels() const { return num_vcs_; }

  /// Number of switch-switch link hops between two hosts.
  [[nodiscard]] std::size_t hops(topo::HostId src, topo::HostId dst) const {
    return path(src, dst).hops();
  }

  /// True when the routes of (a -> b) and (c -> d) share no directed
  /// channel — the paper's link-disjointness condition for contention-free
  /// orderings (Section 4.3.2).
  [[nodiscard]] bool disjoint(const topo::Graph& g, topo::HostId a,
                              topo::HostId b, topo::HostId c,
                              topo::HostId d) const;

  [[nodiscard]] RouteStorage storage() const {
    return lazy_ ? RouteStorage::kCompressed : RouteStorage::kEager;
  }

  /// Switch-pair routes currently materialized (compressed mode;
  /// eager tables report every host pair). Diagnostics and scaling
  /// benches only.
  [[nodiscard]] std::size_t routes_materialized() const;

  /// Approximate heap footprint of the route storage: slot arrays plus
  /// the per-route vectors actually allocated. The quantity
  /// `bench_scale` tracks for the compressed-vs-eager comparison.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Generation tag of the lazy cache (compressed mode; 0 for eager).
  [[nodiscard]] std::uint32_t cache_generation() const;

  /// Drops every materialized route in O(1) by bumping the cache
  /// generation; subsequent path() calls re-materialize from the router.
  /// For callers that mutate router state in place instead of building a
  /// fresh table. No-op for eager tables. Not thread-safe against
  /// concurrent queries.
  void invalidate_cache();

 private:
  /// One lazily filled switch-pair slot. `ready_gen` equal to the
  /// table's current generation publishes `route` (release/acquire).
  struct CacheSlot {
    std::atomic<std::uint32_t> ready_gen{0};
    SwitchRoute route;
  };

  /// State behind the compressed mode, boxed so RouteTable stays movable.
  struct Lazy {
    std::shared_ptr<const Router> owned;   ///< may be null (non-owning)
    const Router* router = nullptr;
    std::unique_ptr<CacheSlot[]> slots;    ///< num_switches² flat cache
    std::vector<std::int32_t> component;   ///< per-switch, -1 = dead
    std::uint32_t generation = 1;
    mutable std::mutex fill_mutex;
    mutable std::atomic<std::size_t> materialized{0};
  };

  [[nodiscard]] std::size_t index(topo::HostId s, topo::HostId d) const {
    return static_cast<std::size_t>(s) * static_cast<std::size_t>(num_hosts_) +
           static_cast<std::size_t>(d);
  }

  [[nodiscard]] std::int32_t component(topo::SwitchId s) const {
    return lazy_->component[static_cast<std::size_t>(s)];
  }

  void init_lazy(const topo::Topology& topology, const Router& router,
                 std::shared_ptr<const Router> owned);
  void init_eager(const topo::Topology& topology, const Router& router);
  void recompute_components();
  [[nodiscard]] const SwitchRoute& lazy_path(topo::HostId src,
                                             topo::HostId dst) const;

  const topo::Topology* topology_;
  std::int32_t num_hosts_;
  std::int32_t num_vcs_;
  std::int32_t epoch_;
  std::int64_t unreachable_pairs_ = 0;
  // Eager storage (empty in compressed mode).
  std::vector<SwitchRoute> routes_;
  std::vector<std::uint8_t> reachable_;
  std::unique_ptr<Lazy> lazy_;  ///< non-null selects compressed mode
};

}  // namespace nimcast::routing
