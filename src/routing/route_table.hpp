#pragma once

#include <cstdint>
#include <vector>

#include "routing/routing.hpp"
#include "topology/topology.hpp"

namespace nimcast::routing {

/// All-pairs host-level routes, precomputed once per (topology, router).
///
/// Host routes are switch routes between the attached switches; hosts on
/// the same switch route through that single switch (zero link hops, but
/// still one injection and one ejection channel in the network model).
///
/// Pairs the router cannot connect (a partitioned surviving subgraph
/// after faults) are recorded as unreachable rather than throwing: check
/// `reachable()` before `path()`. Tables rebuilt after a fault carry an
/// `epoch` so consumers can tell which generation of routes produced a
/// result.
class RouteTable {
 public:
  RouteTable(const topo::Topology& topology, const Router& router,
             std::int32_t epoch = 0);

  /// Only meaningful when `reachable(src, dst)`; unreachable pairs hold
  /// an empty placeholder route.
  [[nodiscard]] const SwitchRoute& path(topo::HostId src,
                                        topo::HostId dst) const {
    return routes_[index(src, dst)];
  }

  [[nodiscard]] bool reachable(topo::HostId src, topo::HostId dst) const {
    return reachable_[index(src, dst)] != 0;
  }

  /// True when every host pair has a legal route (always the case before
  /// any fault partitions the fabric).
  [[nodiscard]] bool fully_connected() const { return unreachable_pairs_ == 0; }

  [[nodiscard]] std::int64_t unreachable_pairs() const {
    return unreachable_pairs_;
  }

  /// Route generation: 0 for the pristine fabric, bumped by each
  /// fault-time rebuild.
  [[nodiscard]] std::int32_t epoch() const { return epoch_; }

  [[nodiscard]] std::int32_t num_hosts() const { return num_hosts_; }

  /// Virtual channels the generating router uses; the network provisions
  /// this many per directed physical channel.
  [[nodiscard]] std::int32_t virtual_channels() const { return num_vcs_; }

  /// Number of switch-switch link hops between two hosts.
  [[nodiscard]] std::size_t hops(topo::HostId src, topo::HostId dst) const {
    return path(src, dst).hops();
  }

  /// True when the routes of (a -> b) and (c -> d) share no directed
  /// channel — the paper's link-disjointness condition for contention-free
  /// orderings (Section 4.3.2).
  [[nodiscard]] bool disjoint(const topo::Graph& g, topo::HostId a,
                              topo::HostId b, topo::HostId c,
                              topo::HostId d) const;

 private:
  [[nodiscard]] std::size_t index(topo::HostId s, topo::HostId d) const {
    return static_cast<std::size_t>(s) * static_cast<std::size_t>(num_hosts_) +
           static_cast<std::size_t>(d);
  }

  std::int32_t num_hosts_;
  std::int32_t num_vcs_;
  std::int32_t epoch_;
  std::int64_t unreachable_pairs_ = 0;
  std::vector<SwitchRoute> routes_;
  std::vector<std::uint8_t> reachable_;
};

}  // namespace nimcast::routing
