#include "routing/routing.hpp"

#include <stdexcept>

namespace nimcast::routing {

std::optional<SwitchRoute> Router::try_route(topo::SwitchId src,
                                             topo::SwitchId dst) const {
  try {
    return route(src, dst);
  } catch (const NoLegalRoute&) {
    return std::nullopt;
  }
}

std::int32_t directed_channel(const topo::Graph& g, topo::LinkId link,
                              topo::SwitchId from) {
  const auto& e = g.edge(link);
  if (from == e.a) return 2 * link;
  if (from == e.b) return 2 * link + 1;
  throw std::invalid_argument("directed_channel: switch not on link");
}

std::vector<std::int32_t> route_channels(const topo::Graph& g,
                                         const SwitchRoute& r,
                                         std::int32_t num_vcs) {
  if (num_vcs < 1) throw std::invalid_argument("route_channels: num_vcs < 1");
  std::vector<std::int32_t> chans;
  chans.reserve(r.links.size());
  for (std::size_t i = 0; i < r.links.size(); ++i) {
    const std::int32_t vc = r.vc(i);
    if (vc >= num_vcs) {
      throw std::invalid_argument("route_channels: vc out of range");
    }
    chans.push_back(directed_channel(g, r.links[i], r.switches[i]) * num_vcs +
                    vc);
  }
  return chans;
}

namespace {

enum class Mark : std::uint8_t { kWhite, kGray, kBlack };

bool has_cycle(std::int32_t v,
               const std::vector<std::vector<std::int32_t>>& adj,
               std::vector<Mark>& mark) {
  mark[static_cast<std::size_t>(v)] = Mark::kGray;
  for (std::int32_t w : adj[static_cast<std::size_t>(v)]) {
    const auto m = mark[static_cast<std::size_t>(w)];
    if (m == Mark::kGray) return true;
    if (m == Mark::kWhite && has_cycle(w, adj, mark)) return true;
  }
  mark[static_cast<std::size_t>(v)] = Mark::kBlack;
  return false;
}

}  // namespace

bool deadlock_free(const topo::Graph& g, const Router& router) {
  const std::int32_t num_vcs = router.virtual_channels();
  const auto num_channels =
      static_cast<std::size_t>(2 * g.num_edges()) *
      static_cast<std::size_t>(num_vcs);
  std::vector<std::vector<std::int32_t>> dep(num_channels);
  for (topo::SwitchId s = 0; s < g.num_vertices(); ++s) {
    for (topo::SwitchId d = 0; d < g.num_vertices(); ++d) {
      if (s == d) continue;
      std::vector<std::int32_t> chans;
      try {
        chans = route_channels(g, router.route(s, d), num_vcs);
      } catch (const NoLegalRoute&) {
        continue;  // pair carries no traffic
      }
      for (std::size_t i = 0; i + 1 < chans.size(); ++i) {
        dep[static_cast<std::size_t>(chans[i])].push_back(chans[i + 1]);
      }
    }
  }
  std::vector<Mark> mark(num_channels, Mark::kWhite);
  for (std::size_t c = 0; c < num_channels; ++c) {
    if (mark[c] == Mark::kWhite &&
        has_cycle(static_cast<std::int32_t>(c), dep, mark)) {
      return false;
    }
  }
  return true;
}

}  // namespace nimcast::routing
