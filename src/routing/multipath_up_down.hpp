#pragma once

#include <vector>

#include "routing/up_down.hpp"

namespace nimcast::routing {

/// Multipath up*/down*: enumerates *all* shortest legal up*/down* paths
/// per switch pair and spreads pairs across them by a deterministic
/// hash.
///
/// The plain UpDownRouter always takes the lexicographically smallest
/// shortest path, which funnels traffic through low-id switches near
/// the BFS root. Irregular networks and fat-trees usually offer several
/// equally short legal paths; hashing (src, dst) over them is the
/// classic oblivious load-balancing move (ECMP avant la lettre).
/// Deadlock freedom is untouched: every selected path is still a legal
/// up*/down* path, and legality — not the selection rule — is what makes
/// the channel dependency graph acyclic.
///
/// Routes remain deterministic per (src, dst), which the contention-free
/// tree construction requires.
class MultipathUpDownRouter final : public Router {
 public:
  explicit MultipathUpDownRouter(const topo::Graph& g,
                                 topo::SwitchId root = -1,
                                 std::uint64_t salt = 0);

  /// Explicit-level orientation (see UpDownRouter): the variant that
  /// actually yields path diversity on structured fabrics.
  MultipathUpDownRouter(const topo::Graph& g,
                        std::vector<std::int32_t> levels,
                        std::uint64_t salt = 0);

  [[nodiscard]] SwitchRoute route(topo::SwitchId src,
                                  topo::SwitchId dst) const override;
  [[nodiscard]] const char* name() const override {
    return "multipath-up*/down*";
  }

  /// All shortest legal paths between two switches (at least one).
  [[nodiscard]] std::vector<SwitchRoute> all_shortest(
      topo::SwitchId src, topo::SwitchId dst) const;

  [[nodiscard]] const UpDownRouter& base() const { return base_; }

 private:
  UpDownRouter base_;  ///< supplies orientation and the legality rule
  const topo::Graph& graph_;
  std::uint64_t salt_;
};

}  // namespace nimcast::routing
