#pragma once

#include <memory>

#include "routing/route_table.hpp"
#include "topology/topology.hpp"

namespace nimcast::routing {

/// Rebuilds an up*/down* route table on the surviving subgraph after
/// fault injection. The mask's dead links/switches are excised, each
/// surviving component gets its own BFS orientation, and host pairs that
/// ended up in different components (or on a dead switch) come back as
/// unreachable rather than throwing. `epoch` stamps the generation;
/// `preferred_root` keeps the pre-fault root when it survived, which
/// minimizes route churn for unaffected pairs.
///
/// Single-VC routers only — callers running multi-VC fabrics (dateline
/// tori) must supply their own rebuild or skip rerouting.
[[nodiscard]] std::unique_ptr<RouteTable> rebuild_updown(
    const topo::Topology& topology, const topo::SubgraphMask& mask,
    std::int32_t epoch, topo::SwitchId preferred_root = -1);

}  // namespace nimcast::routing
