#include "routing/dimension_ordered.hpp"

#include <cstdlib>
#include <stdexcept>

namespace nimcast::routing {
namespace {

std::uint64_t pair_key(topo::SwitchId a, topo::SwitchId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

DimensionOrderedRouter::DimensionOrderedRouter(const topo::Graph& g,
                                               topo::KAryNCubeConfig cfg)
    : graph_{g}, cfg_{cfg} {
  for (topo::LinkId e = 0; e < g.num_edges(); ++e) {
    link_index_.emplace(pair_key(g.edge(e).a, g.edge(e).b), e);
  }
}

topo::LinkId DimensionOrderedRouter::link_between(topo::SwitchId a,
                                                  topo::SwitchId b) const {
  const auto it = link_index_.find(pair_key(a, b));
  if (it == link_index_.end()) {
    throw std::logic_error("DimensionOrderedRouter: missing cube link");
  }
  return it->second;
}

SwitchRoute DimensionOrderedRouter::route(topo::SwitchId src,
                                          topo::SwitchId dst) const {
  SwitchRoute r;
  r.switches.push_back(src);
  auto cur = topo::to_coords(src, cfg_);
  const auto goal = topo::to_coords(dst, cfg_);
  for (std::int32_t d = 0; d < cfg_.dimensions; ++d) {
    auto& c = cur[static_cast<std::size_t>(d)];
    const auto g = goal[static_cast<std::size_t>(d)];
    bool crossed_dateline = false;
    while (c != g) {
      std::int32_t step;
      if (!cfg_.wraparound) {
        step = g > c ? 1 : -1;
      } else {
        const std::int32_t fwd = (g - c + cfg_.radix) % cfg_.radix;
        const std::int32_t bwd = cfg_.radix - fwd;
        step = fwd <= bwd ? 1 : -1;
      }
      const std::int32_t c_before = c;
      const topo::SwitchId prev = topo::from_coords(cur, cfg_);
      c = (c + step + cfg_.radix) % cfg_.radix;
      const topo::SwitchId next = topo::from_coords(cur, cfg_);
      r.links.push_back(link_between(prev, next));
      r.switches.push_back(next);
      if (cfg_.wraparound) {
        // Dateline: the wraparound hop and everything after it in this
        // dimension ride VC 1.
        if (std::abs(c - c_before) == cfg_.radix - 1) {
          crossed_dateline = true;
        }
        r.vcs.push_back(crossed_dateline ? std::uint8_t{1} : std::uint8_t{0});
      }
    }
  }
  return r;
}

}  // namespace nimcast::routing
