#include "routing/repair.hpp"

#include "routing/up_down.hpp"

namespace nimcast::routing {

std::unique_ptr<RouteTable> rebuild_updown(const topo::Topology& topology,
                                           const topo::SubgraphMask& mask,
                                           std::int32_t epoch,
                                           topo::SwitchId preferred_root) {
  const UpDownRouter router{topology.switches(), mask, preferred_root};
  return std::make_unique<RouteTable>(topology, router, epoch);
}

}  // namespace nimcast::routing
