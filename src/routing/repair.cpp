#include "routing/repair.hpp"

#include "routing/up_down.hpp"

namespace nimcast::routing {

std::unique_ptr<RouteTable> rebuild_updown(const topo::Topology& topology,
                                           const topo::SubgraphMask& mask,
                                           std::int32_t epoch,
                                           topo::SwitchId preferred_root) {
  // Compressed: a fault-time rebuild must not pay the all-pairs cost —
  // most pairs never exchange traffic during an outage window. The table
  // owns the masked router so routes can keep materializing lazily.
  auto router = std::make_shared<const UpDownRouter>(topology.switches(), mask,
                                                     preferred_root);
  return std::make_unique<RouteTable>(topology, std::move(router), epoch,
                                      RouteStorage::kCompressed);
}

}  // namespace nimcast::routing
