#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "topology/graph.hpp"
#include "topology/ids.hpp"
#include "topology/topology.hpp"

namespace nimcast::routing {

/// A switch-level route. `switches` lists every switch visited, source
/// first; `links[i]` is the link crossed between `switches[i]` and
/// `switches[i+1]`. A route that starts and ends on the same switch has one
/// entry and no links.
///
/// `vcs` optionally assigns a virtual channel per hop (empty means VC 0
/// everywhere). Virtual channels break cyclic channel dependencies on
/// topologies where the physical channels alone cannot — the dateline
/// scheme on tori being the classic case.
struct SwitchRoute {
  std::vector<topo::SwitchId> switches;
  std::vector<topo::LinkId> links;
  std::vector<std::uint8_t> vcs;

  [[nodiscard]] std::size_t hops() const { return links.size(); }
  [[nodiscard]] bool valid_shape() const {
    return !switches.empty() && switches.size() == links.size() + 1 &&
           (vcs.empty() || vcs.size() == links.size());
  }
  [[nodiscard]] std::uint8_t vc(std::size_t hop) const {
    return vcs.empty() ? std::uint8_t{0} : vcs[hop];
  }
};

/// Thrown by Router::route when no legal route exists between two
/// switches. Legitimate for multi-root orientations (e.g. level-based
/// up*/down* on a fat-tree, where spine-to-spine would need an illegal
/// down->up turn); such pairs simply carry no traffic. Host-level route
/// tables must never hit this — hosts hang off leaves.
class NoLegalRoute : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Deterministic unicast routing function over a switch graph.
///
/// Implementations must be connected and deterministic: the same (src,
/// dst) always yields the same route, because the paper's contention-free
/// tree constructions reason about *the* path between two nodes.
class Router {
 public:
  virtual ~Router() = default;
  [[nodiscard]] virtual SwitchRoute route(topo::SwitchId src,
                                          topo::SwitchId dst) const = 0;
  /// Non-throwing variant: nullopt where route() would throw NoLegalRoute
  /// — the queryable "unreachable" verdict fault repair builds on.
  /// Routers with a cheap feasibility check override this; the default
  /// wraps route().
  [[nodiscard]] virtual std::optional<SwitchRoute> try_route(
      topo::SwitchId src, topo::SwitchId dst) const;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Virtual channels this router's routes may reference (>= 1). The
  /// network must provision this many per directed physical channel.
  [[nodiscard]] virtual std::int32_t virtual_channels() const { return 1; }
  /// Per-switch connectivity verdict for *host-attached* switches: two
  /// hosts are mutually routable iff their switches carry the same
  /// non-negative component id (-1 marks a dead switch). The compressed
  /// RouteTable uses this to answer reachable() and count unreachable
  /// pairs without materializing any route. The default — one component
  /// spanning every switch — is correct for routers over a connected,
  /// pristine fabric; mask-aware routers (post-fault up*/down*) override
  /// it with the surviving components.
  [[nodiscard]] virtual std::vector<std::int32_t> host_reach_components(
      const topo::Graph& g) const {
    return std::vector<std::int32_t>(
        static_cast<std::size_t>(g.num_vertices()), 0);
  }
};

/// Directed channel id for a link crossing: 2*link for the a->b direction,
/// 2*link+1 for b->a. The wormhole network and the deadlock checker share
/// this numbering. With V virtual channels, VC v of directed channel c is
/// channel c*V + v.
[[nodiscard]] std::int32_t directed_channel(const topo::Graph& g,
                                            topo::LinkId link,
                                            topo::SwitchId from);

/// Converts a route into its directed-channel sequence, expanding virtual
/// channels with multiplicity `num_vcs`.
[[nodiscard]] std::vector<std::int32_t> route_channels(
    const topo::Graph& g, const SwitchRoute& r, std::int32_t num_vcs = 1);

/// True when the channel-dependency graph induced by all switch-pair
/// routes of `router` on `g` is acyclic — i.e. wormhole routing over these
/// routes cannot deadlock (Dally & Seitz condition). Honors the router's
/// virtual-channel assignment; switch pairs without a legal route
/// (NoLegalRoute) contribute no dependencies.
[[nodiscard]] bool deadlock_free(const topo::Graph& g, const Router& router);

}  // namespace nimcast::routing
