#pragma once

#include <unordered_map>

#include "routing/routing.hpp"
#include "topology/kary_ncube.hpp"

namespace nimcast::routing {

/// Dimension-ordered (e-cube) routing on a k-ary n-cube.
///
/// A packet corrects its address one dimension at a time, lowest dimension
/// first. On meshes this is the classic XY/XYZ routing and the channel
/// dependency graph is acyclic outright. On tori the shorter wrap
/// direction is taken (ties resolved toward increasing coordinates) and
/// deadlock freedom is restored with two virtual channels per physical
/// channel using Dally's dateline scheme: a packet rides VC 0 within each
/// dimension until it crosses the wraparound link, then VC 1 for the rest
/// of that dimension.
class DimensionOrderedRouter final : public Router {
 public:
  DimensionOrderedRouter(const topo::Graph& g, topo::KAryNCubeConfig cfg);

  [[nodiscard]] SwitchRoute route(topo::SwitchId src,
                                  topo::SwitchId dst) const override;
  [[nodiscard]] const char* name() const override {
    return "dimension-ordered";
  }
  [[nodiscard]] std::int32_t virtual_channels() const override {
    return cfg_.wraparound ? 2 : 1;
  }

 private:
  [[nodiscard]] topo::LinkId link_between(topo::SwitchId a,
                                          topo::SwitchId b) const;

  const topo::Graph& graph_;
  topo::KAryNCubeConfig cfg_;
  std::unordered_map<std::uint64_t, topo::LinkId> link_index_;
};

}  // namespace nimcast::routing
