#include "routing/up_down.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <queue>
#include <stdexcept>

namespace nimcast::routing {
namespace {

topo::SwitchId default_root(const topo::Graph& g) {
  topo::SwitchId best = 0;
  for (topo::SwitchId s = 1; s < g.num_vertices(); ++s) {
    if (g.degree(s) > g.degree(best)) best = s;
  }
  return best;
}

std::int32_t alive_degree(const topo::Graph& g, const topo::SubgraphMask& mask,
                          topo::SwitchId s) {
  std::int32_t d = 0;
  for (topo::LinkId e : g.incident(s)) {
    if (mask.link_alive(e) && mask.switch_alive(g.edge(e).other(s))) ++d;
  }
  return d;
}

/// Per-component BFS levels over the surviving subgraph: every alive
/// switch gets a level relative to its own component root (dead switches
/// stay -1). Levels only ever compare across one link, whose endpoints
/// share a component, so independent per-component numberings are fine.
std::vector<std::int32_t> masked_levels(const topo::Graph& g,
                                        const topo::SubgraphMask& mask,
                                        topo::SwitchId preferred_root,
                                        topo::SwitchId& primary_root) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<std::int32_t> level(n, -1);
  primary_root = topo::kInvalidId;
  auto pick_root = [&]() -> topo::SwitchId {
    topo::SwitchId best = topo::kInvalidId;
    std::int32_t best_deg = -1;
    for (topo::SwitchId s = 0; s < g.num_vertices(); ++s) {
      if (!mask.switch_alive(s) || level[static_cast<std::size_t>(s)] >= 0) {
        continue;
      }
      const auto d = alive_degree(g, mask, s);
      if (d > best_deg) {
        best = s;
        best_deg = d;
      }
    }
    return best;
  };
  bool first = true;
  for (;;) {
    topo::SwitchId root = topo::kInvalidId;
    if (first && preferred_root >= 0 && mask.switch_alive(preferred_root)) {
      root = preferred_root;
    } else {
      root = pick_root();
    }
    if (root < 0) break;
    if (first) primary_root = root;
    first = false;
    const auto component = g.bfs_levels(root, mask);
    for (std::size_t s = 0; s < n; ++s) {
      if (component[s] >= 0 && level[s] < 0) level[s] = component[s];
    }
  }
  return level;
}

}  // namespace

namespace {

std::vector<topo::SwitchId> orient_links(const topo::Graph& g,
                                         const std::vector<std::int32_t>& lv) {
  std::vector<topo::SwitchId> up_end(static_cast<std::size_t>(g.num_edges()));
  for (topo::LinkId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    const auto la = lv[static_cast<std::size_t>(edge.a)];
    const auto lb = lv[static_cast<std::size_t>(edge.b)];
    if (la != lb) {
      up_end[static_cast<std::size_t>(e)] = la < lb ? edge.a : edge.b;
    } else {
      up_end[static_cast<std::size_t>(e)] = std::min(edge.a, edge.b);
    }
  }
  return up_end;
}

}  // namespace

UpDownRouter::UpDownRouter(const topo::Graph& g, topo::SwitchId root)
    : graph_{g}, root_{root >= 0 ? root : default_root(g)} {
  if (!g.connected()) {
    throw std::invalid_argument("UpDownRouter: graph must be connected");
  }
  level_ = g.bfs_levels(root_);
  up_end_ = orient_links(g, level_);
}

UpDownRouter::UpDownRouter(const topo::Graph& g,
                           std::vector<std::int32_t> levels)
    : graph_{g}, level_{std::move(levels)} {
  if (!g.connected()) {
    throw std::invalid_argument("UpDownRouter: graph must be connected");
  }
  if (level_.size() != static_cast<std::size_t>(g.num_vertices())) {
    throw std::invalid_argument("UpDownRouter: levels size mismatch");
  }
  // Report the lowest-id top-level vertex as the root.
  root_ = 0;
  for (topo::SwitchId s = 1; s < g.num_vertices(); ++s) {
    if (level_[static_cast<std::size_t>(s)] <
        level_[static_cast<std::size_t>(root_)]) {
      root_ = s;
    }
  }
  up_end_ = orient_links(g, level_);
}

UpDownRouter::UpDownRouter(const topo::Graph& g, topo::SubgraphMask mask,
                           topo::SwitchId preferred_root)
    : graph_{g}, mask_{std::move(mask)} {
  if (!mask_.dead_link.empty() &&
      mask_.dead_link.size() != static_cast<std::size_t>(g.num_edges())) {
    throw std::invalid_argument("UpDownRouter: dead_link size mismatch");
  }
  if (!mask_.dead_switch.empty() &&
      mask_.dead_switch.size() != static_cast<std::size_t>(g.num_vertices())) {
    throw std::invalid_argument("UpDownRouter: dead_switch size mismatch");
  }
  level_ = masked_levels(g, mask_, preferred_root, root_);
  up_end_ = orient_links(g, level_);
}

std::vector<std::int32_t> UpDownRouter::host_reach_components(
    const topo::Graph& g) const {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<std::int32_t> comp(n, -1);
  std::int32_t next = 0;
  std::queue<topo::SwitchId> q;
  for (topo::SwitchId s = 0; s < g.num_vertices(); ++s) {
    if (!mask_.switch_alive(s) || comp[static_cast<std::size_t>(s)] >= 0) {
      continue;
    }
    comp[static_cast<std::size_t>(s)] = next;
    q.push(s);
    while (!q.empty()) {
      const auto v = q.front();
      q.pop();
      for (topo::LinkId e : g.incident(v)) {
        if (!mask_.link_alive(e)) continue;
        const auto w = g.edge(e).other(v);
        if (!mask_.switch_alive(w)) continue;
        auto& cw = comp[static_cast<std::size_t>(w)];
        if (cw >= 0) continue;
        cw = next;
        q.push(w);
      }
    }
    ++next;
  }
  return comp;
}

bool UpDownRouter::is_up(topo::LinkId link, topo::SwitchId from) const {
  // Moving out of `from` is "up" when the *other* end is the up end.
  return graph_.edge(link).other(from) == up_end(link);
}

SwitchRoute UpDownRouter::route(topo::SwitchId src, topo::SwitchId dst) const {
  auto r = try_route(src, dst);
  if (!r) {
    throw NoLegalRoute("UpDownRouter::route: no legal up*/down* route");
  }
  return *std::move(r);
}

std::optional<SwitchRoute> UpDownRouter::try_route(topo::SwitchId src,
                                                   topo::SwitchId dst) const {
  if (src < 0 || src >= graph_.num_vertices() || dst < 0 ||
      dst >= graph_.num_vertices()) {
    throw std::invalid_argument("UpDownRouter::route: switch out of range");
  }
  if (!mask_.switch_alive(src) || !mask_.switch_alive(dst)) {
    return std::nullopt;
  }
  if (src == dst) return SwitchRoute{{src}, {}, {}};

  // BFS over (switch, phase) states; phase 0 = may still go up,
  // phase 1 = committed to going down. A down move from phase 0 enters
  // phase 1; an up move is legal only in phase 0.
  const auto n = static_cast<std::size_t>(graph_.num_vertices());
  constexpr std::int32_t kUnvisited = std::numeric_limits<std::int32_t>::max();
  struct Parent {
    topo::SwitchId sw = topo::kInvalidId;
    topo::LinkId link = topo::kInvalidId;
    std::int8_t phase = -1;
  };
  std::array<std::vector<std::int32_t>, 2> dist{
      std::vector<std::int32_t>(n, kUnvisited),
      std::vector<std::int32_t>(n, kUnvisited)};
  std::array<std::vector<Parent>, 2> parent{std::vector<Parent>(n),
                                            std::vector<Parent>(n)};

  std::queue<std::pair<topo::SwitchId, std::int8_t>> q;
  dist[0][static_cast<std::size_t>(src)] = 0;
  q.emplace(src, 0);

  // Deterministic neighbor order: sort incident links of each step by
  // (neighbor id, link id). Incident spans are in construction order, so
  // sort a local copy.
  while (!q.empty()) {
    const auto [v, phase] = q.front();
    q.pop();
    if (v == dst) break;  // first dequeue of dst is a shortest legal path
    const auto dv = dist[static_cast<std::size_t>(phase)]
                        [static_cast<std::size_t>(v)];

    auto span = graph_.incident(v);
    std::vector<topo::LinkId> links{span.begin(), span.end()};
    std::sort(links.begin(), links.end(),
              [&](topo::LinkId x, topo::LinkId y) {
                const auto wx = graph_.edge(x).other(v);
                const auto wy = graph_.edge(y).other(v);
                return std::tie(wx, x) < std::tie(wy, y);
              });

    for (topo::LinkId e : links) {
      if (!mask_.link_alive(e)) continue;
      const topo::SwitchId w = graph_.edge(e).other(v);
      if (!mask_.switch_alive(w)) continue;
      const bool up_move = is_up(e, v);
      if (up_move && phase != 0) continue;  // down->up turn is illegal
      const std::int8_t next_phase = up_move ? std::int8_t{0} : std::int8_t{1};
      const auto wi = static_cast<std::size_t>(w);
      auto& dw = dist[static_cast<std::size_t>(next_phase)][wi];
      if (dw != kUnvisited) continue;
      dw = dv + 1;
      parent[static_cast<std::size_t>(next_phase)][wi] = Parent{v, e, phase};
      q.emplace(w, next_phase);
    }
  }

  const auto d0 = dist[0][static_cast<std::size_t>(dst)];
  const auto d1 = dist[1][static_cast<std::size_t>(dst)];
  if (d0 == kUnvisited && d1 == kUnvisited) {
    return std::nullopt;
  }
  // Prefer the shorter; ties go to the pure-up arrival (phase 0), which is
  // the deterministic first-found in our BFS order as well.
  std::int8_t phase = (d0 <= d1) ? std::int8_t{0} : std::int8_t{1};

  // Reconstruct by walking parents from (dst, phase) to (src, 0).
  SwitchRoute r;
  std::vector<topo::SwitchId> rev_switches{dst};
  std::vector<topo::LinkId> rev_links;
  topo::SwitchId cur = dst;
  std::int8_t cur_phase = phase;
  while (cur != src) {
    const auto ci = static_cast<std::size_t>(cur);
    const Parent& p = parent[static_cast<std::size_t>(cur_phase)][ci];
    rev_links.push_back(p.link);
    rev_switches.push_back(p.sw);
    cur = p.sw;
    cur_phase = p.phase;
  }
  r.switches.assign(rev_switches.rbegin(), rev_switches.rend());
  r.links.assign(rev_links.rbegin(), rev_links.rend());
  return r;
}

}  // namespace nimcast::routing
