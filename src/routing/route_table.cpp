#include "routing/route_table.hpp"

#include <algorithm>

namespace nimcast::routing {

RouteTable::RouteTable(const topo::Topology& topology, const Router& router,
                       std::int32_t epoch)
    : num_hosts_{topology.num_hosts()},
      num_vcs_{router.virtual_channels()},
      epoch_{epoch} {
  const auto pairs = static_cast<std::size_t>(num_hosts_) *
                     static_cast<std::size_t>(num_hosts_);
  routes_.resize(pairs);
  reachable_.assign(pairs, 0);
  for (topo::HostId s = 0; s < num_hosts_; ++s) {
    for (topo::HostId d = 0; d < num_hosts_; ++d) {
      auto r = router.try_route(topology.switch_of(s), topology.switch_of(d));
      if (r) {
        routes_[index(s, d)] = *std::move(r);
        reachable_[index(s, d)] = 1;
      } else {
        ++unreachable_pairs_;
      }
    }
  }
}

bool RouteTable::disjoint(const topo::Graph& g, topo::HostId a, topo::HostId b,
                          topo::HostId c, topo::HostId d) const {
  const auto ch1 = route_channels(g, path(a, b), num_vcs_);
  const auto ch2 = route_channels(g, path(c, d), num_vcs_);
  for (std::int32_t x : ch1) {
    if (std::find(ch2.begin(), ch2.end(), x) != ch2.end()) return false;
  }
  return true;
}

}  // namespace nimcast::routing
