#include "routing/route_table.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace nimcast::routing {

RouteTable::RouteTable(const topo::Topology& topology, const Router& router,
                       std::int32_t epoch, RouteStorage storage)
    : topology_{&topology},
      num_hosts_{topology.num_hosts()},
      num_vcs_{router.virtual_channels()},
      epoch_{epoch} {
  if (storage == RouteStorage::kEager) {
    init_eager(topology, router);
  } else {
    init_lazy(topology, router, nullptr);
  }
}

RouteTable::RouteTable(const topo::Topology& topology,
                       std::shared_ptr<const Router> router, std::int32_t epoch,
                       RouteStorage storage)
    : topology_{&topology},
      num_hosts_{topology.num_hosts()},
      num_vcs_{router->virtual_channels()},
      epoch_{epoch} {
  if (storage == RouteStorage::kEager) {
    init_eager(topology, *router);
  } else {
    const Router& ref = *router;
    init_lazy(topology, ref, std::move(router));
  }
}

void RouteTable::init_eager(const topo::Topology& topology,
                            const Router& router) {
  const auto pairs = static_cast<std::size_t>(num_hosts_) *
                     static_cast<std::size_t>(num_hosts_);
  routes_.resize(pairs);
  reachable_.assign(pairs, 0);
  for (topo::HostId s = 0; s < num_hosts_; ++s) {
    for (topo::HostId d = 0; d < num_hosts_; ++d) {
      auto r = router.try_route(topology.switch_of(s), topology.switch_of(d));
      if (r) {
        routes_[index(s, d)] = *std::move(r);
        reachable_[index(s, d)] = 1;
      } else {
        ++unreachable_pairs_;
      }
    }
  }
}

void RouteTable::init_lazy(const topo::Topology& topology, const Router& router,
                           std::shared_ptr<const Router> owned) {
  lazy_ = std::make_unique<Lazy>();
  lazy_->owned = std::move(owned);
  lazy_->router = &router;
  const auto num_switches =
      static_cast<std::size_t>(topology.switches().num_vertices());
  lazy_->slots = std::make_unique<CacheSlot[]>(num_switches * num_switches);
  recompute_components();
}

void RouteTable::recompute_components() {
  lazy_->component = lazy_->router->host_reach_components(
      topology_->switches());
  // unreachable_pairs = hosts² − Σ_component (hosts in component)², the
  // same count the eager loop accumulates pair by pair. Hosts on a dead
  // switch (component -1) reach nobody, themselves included, so they
  // contribute no c² term and stay subtracted.
  std::vector<std::int64_t> hosts_in_component(lazy_->component.size(), 0);
  for (topo::HostId h = 0; h < num_hosts_; ++h) {
    const auto c = component(topology_->switch_of(h));
    if (c >= 0) ++hosts_in_component[static_cast<std::size_t>(c)];
  }
  const auto total = static_cast<std::int64_t>(num_hosts_);
  unreachable_pairs_ = total * total;
  for (const auto count : hosts_in_component) {
    unreachable_pairs_ -= count * count;
  }
}

const SwitchRoute& RouteTable::lazy_path(topo::HostId src,
                                         topo::HostId dst) const {
  const auto s = topology_->switch_of(src);
  const auto d = topology_->switch_of(dst);
  const auto num_switches =
      static_cast<std::size_t>(topology_->switches().num_vertices());
  auto& slot = lazy_->slots[static_cast<std::size_t>(s) * num_switches +
                            static_cast<std::size_t>(d)];
  const auto gen = lazy_->generation;
  if (slot.ready_gen.load(std::memory_order_acquire) == gen) {
    return slot.route;
  }
  std::lock_guard lock{lazy_->fill_mutex};
  if (slot.ready_gen.load(std::memory_order_relaxed) == gen) {
    return slot.route;
  }
  auto r = lazy_->router->try_route(s, d);
  // Routability must agree with the component map, or reachable() and
  // path() would contradict each other.
  assert(r.has_value() ==
         (component(s) >= 0 && component(s) == component(d)));
  slot.route = r ? *std::move(r) : SwitchRoute{};
  lazy_->materialized.fetch_add(1, std::memory_order_relaxed);
  slot.ready_gen.store(gen, std::memory_order_release);
  return slot.route;
}

bool RouteTable::disjoint(const topo::Graph& g, topo::HostId a, topo::HostId b,
                          topo::HostId c, topo::HostId d) const {
  const auto ch1 = route_channels(g, path(a, b), num_vcs_);
  const auto ch2 = route_channels(g, path(c, d), num_vcs_);
  for (std::int32_t x : ch1) {
    if (std::find(ch2.begin(), ch2.end(), x) != ch2.end()) return false;
  }
  return true;
}

std::size_t RouteTable::routes_materialized() const {
  if (!lazy_) return routes_.size();
  return lazy_->materialized.load(std::memory_order_relaxed);
}

namespace {

std::size_t route_heap_bytes(const SwitchRoute& r) {
  return r.switches.capacity() * sizeof(topo::SwitchId) +
         r.links.capacity() * sizeof(topo::LinkId) +
         r.vcs.capacity() * sizeof(std::uint8_t);
}

}  // namespace

std::size_t RouteTable::memory_bytes() const {
  std::size_t bytes = 0;
  if (lazy_) {
    const auto num_switches =
        static_cast<std::size_t>(topology_->switches().num_vertices());
    const auto slots = num_switches * num_switches;
    bytes += slots * sizeof(CacheSlot);
    bytes += lazy_->component.capacity() * sizeof(std::int32_t);
    for (std::size_t i = 0; i < slots; ++i) {
      bytes += route_heap_bytes(lazy_->slots[i].route);
    }
  } else {
    bytes += routes_.capacity() * sizeof(SwitchRoute);
    bytes += reachable_.capacity() * sizeof(std::uint8_t);
    for (const auto& r : routes_) bytes += route_heap_bytes(r);
  }
  return bytes;
}

std::uint32_t RouteTable::cache_generation() const {
  return lazy_ ? lazy_->generation : 0;
}

void RouteTable::invalidate_cache() {
  if (!lazy_) return;
  ++lazy_->generation;
  lazy_->materialized.store(0, std::memory_order_relaxed);
  recompute_components();
}

}  // namespace nimcast::routing
