#pragma once

#include <vector>

#include "routing/routing.hpp"

namespace nimcast::routing {

/// up*/down* routing for irregular switch-based networks.
///
/// A BFS spanning tree is grown from a root switch and every link (tree
/// and cross link alike) is oriented: the "up" end is the endpoint closer
/// to the root, with lower switch id breaking ties. A legal route crosses
/// zero or more links in the up direction followed by zero or more in the
/// down direction — this forbids the down->up turn and makes the channel
/// dependency graph acyclic, hence deadlock-free wormhole routing
/// (the scheme of Autonet, used by the paper's reference [5]).
///
/// Routes returned are shortest legal paths with deterministic tie-breaks
/// (prefer the lexicographically smallest next (switch, link)).
class UpDownRouter final : public Router {
 public:
  /// `root < 0` selects the default root: the switch with the highest
  /// degree (lowest id on ties), a standard heuristic that keeps the BFS
  /// tree shallow.
  explicit UpDownRouter(const topo::Graph& g, topo::SwitchId root = -1);

  /// Orientation from an explicit level function instead of BFS: "up"
  /// points toward strictly smaller levels (lower id on equal levels).
  /// Structured fabrics (fat-trees) use this to make *every* spine an
  /// "up" target — BFS from a single root would bury the other spines
  /// below the leaves and destroy path diversity. Still deadlock-free:
  /// any consistent orientation forbidding down->up turns is.
  UpDownRouter(const topo::Graph& g, std::vector<std::int32_t> levels);

  /// Orientation over the surviving subgraph after fault injection. The
  /// graph may be disconnected: each surviving component is oriented by
  /// its own BFS (roots picked by highest alive degree, lowest id on
  /// ties; `preferred_root` wins for its component when alive). Pairs in
  /// different components are unreachable — try_route() reports nullopt
  /// and route() throws NoLegalRoute for them.
  UpDownRouter(const topo::Graph& g, topo::SubgraphMask mask,
               topo::SwitchId preferred_root = -1);

  [[nodiscard]] SwitchRoute route(topo::SwitchId src,
                                  topo::SwitchId dst) const override;
  [[nodiscard]] std::optional<SwitchRoute> try_route(
      topo::SwitchId src, topo::SwitchId dst) const override;
  [[nodiscard]] const char* name() const override { return "up*/down*"; }

  /// Surviving-component map for the compressed RouteTable: BFS component
  /// ids over the masked graph, dead switches -1. Component equality is
  /// exactly try_route() feasibility — up*/down* connects every alive
  /// pair within a component (both ends reach the component root via
  /// tree edges, and root-to-anywhere is a pure down path).
  [[nodiscard]] std::vector<std::int32_t> host_reach_components(
      const topo::Graph& g) const override;

  [[nodiscard]] topo::SwitchId root() const { return root_; }
  [[nodiscard]] const std::vector<std::int32_t>& levels() const {
    return level_;
  }
  /// The endpoint of `link` on the "up" side (closer to the root).
  [[nodiscard]] topo::SwitchId up_end(topo::LinkId link) const {
    return up_end_[static_cast<std::size_t>(link)];
  }
  /// True when traversing `link` out of `from` moves in the up direction.
  [[nodiscard]] bool is_up(topo::LinkId link, topo::SwitchId from) const;

  [[nodiscard]] const topo::SubgraphMask& mask() const { return mask_; }

 private:
  const topo::Graph& graph_;
  topo::SwitchId root_;
  topo::SubgraphMask mask_;  ///< empty (all alive) for the full-graph ctors
  std::vector<std::int32_t> level_;
  std::vector<topo::SwitchId> up_end_;
};

}  // namespace nimcast::routing
