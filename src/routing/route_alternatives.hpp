#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "routing/route_table.hpp"
#include "routing/up_down.hpp"
#include "topology/topology.hpp"

namespace nimcast::routing {

/// Alternative-route factory for the streaming-broadcast rotation set.
///
/// Each rotation member routes its tree edges through a *salted*
/// multipath up*/down* table: same orientation as the base router (so
/// every alternative stays deadlock-free — legality, not selection,
/// makes the channel dependency graph acyclic), different deterministic
/// hash over the equally-short legal paths. Tables are compressed and
/// own their router, so R alternatives cost R slot arrays plus only the
/// switch-pair routes the member trees actually touch — never R eager
/// all-pairs tables.
[[nodiscard]] std::shared_ptr<const RouteTable> make_salted_table(
    const topo::Topology& topology, const UpDownRouter& base,
    std::uint64_t salt);

/// Directed switch-channel footprint of a set of host-to-host edges
/// under `table`: the sorted, deduplicated channel ids (see
/// routing::route_channels) every (parent -> child) route crosses.
/// Injection and ejection channels are excluded — every rotation member
/// shares the same per-host NI channels by construction, so only
/// switch-link contention distinguishes members.
[[nodiscard]] std::vector<std::int32_t> edge_channel_footprint(
    const topo::Topology& topology, const RouteTable& table,
    const std::vector<std::pair<topo::HostId, topo::HostId>>& edges);

/// |a ∩ b| for sorted channel-id vectors.
[[nodiscard]] std::size_t footprint_intersection(
    const std::vector<std::int32_t>& a, const std::vector<std::int32_t>& b);

/// Sorted union a ∪ b.
[[nodiscard]] std::vector<std::int32_t> footprint_union(
    const std::vector<std::int32_t>& a, const std::vector<std::int32_t>& b);

}  // namespace nimcast::routing
