#include "routing/multipath_up_down.hpp"

#include <algorithm>
#include <functional>
#include <array>
#include <limits>
#include <queue>
#include <stdexcept>

namespace nimcast::routing {
namespace {

constexpr std::int32_t kUnvisited = std::numeric_limits<std::int32_t>::max();
/// Path-explosion guard; 64 alternatives is far beyond what load
/// balancing needs.
constexpr std::size_t kMaxPaths = 64;

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= UINT64_C(0xff51afd7ed558ccd);
  x ^= x >> 33;
  x *= UINT64_C(0xc4ceb9fe1a85ec53);
  x ^= x >> 33;
  return x;
}

}  // namespace

MultipathUpDownRouter::MultipathUpDownRouter(const topo::Graph& g,
                                             topo::SwitchId root,
                                             std::uint64_t salt)
    : base_{g, root}, graph_{g}, salt_{salt} {}

MultipathUpDownRouter::MultipathUpDownRouter(const topo::Graph& g,
                                             std::vector<std::int32_t> levels,
                                             std::uint64_t salt)
    : base_{g, std::move(levels)}, graph_{g}, salt_{salt} {}

std::vector<SwitchRoute> MultipathUpDownRouter::all_shortest(
    topo::SwitchId src, topo::SwitchId dst) const {
  if (src == dst) return {SwitchRoute{{src}, {}, {}}};

  // Forward BFS over (switch, phase) states; phase 0 = may still go up.
  const auto n = static_cast<std::size_t>(graph_.num_vertices());
  std::array<std::vector<std::int32_t>, 2> dist{
      std::vector<std::int32_t>(n, kUnvisited),
      std::vector<std::int32_t>(n, kUnvisited)};
  std::queue<std::pair<topo::SwitchId, std::int8_t>> q;
  dist[0][static_cast<std::size_t>(src)] = 0;
  q.emplace(src, 0);
  while (!q.empty()) {
    const auto [v, phase] = q.front();
    q.pop();
    const auto dv =
        dist[static_cast<std::size_t>(phase)][static_cast<std::size_t>(v)];
    for (topo::LinkId e : graph_.incident(v)) {
      const topo::SwitchId w = graph_.edge(e).other(v);
      const bool up_move = base_.is_up(e, v);
      if (up_move && phase != 0) continue;
      const std::int8_t np = up_move ? std::int8_t{0} : std::int8_t{1};
      const auto wi = static_cast<std::size_t>(w);
      auto& dw = dist[static_cast<std::size_t>(np)][wi];
      if (dw != kUnvisited) continue;
      dw = dv + 1;
      q.emplace(w, np);
    }
  }

  const auto d0 = dist[0][static_cast<std::size_t>(dst)];
  const auto d1 = dist[1][static_cast<std::size_t>(dst)];
  const std::int32_t dmin = std::min(d0, d1);
  if (dmin == kUnvisited) {
    throw NoLegalRoute("MultipathUpDownRouter: no legal up*/down* route");
  }

  // Backward DFS over decreasing-distance legal transitions, collecting
  // every distinct shortest path. rev_links holds the links from dst
  // back toward the current state; on reaching the source it is reversed
  // into a route.
  std::vector<SwitchRoute> paths;
  std::vector<topo::LinkId> rev_links;

  const std::function<void(topo::SwitchId, std::int8_t)> walk =
      [&](topo::SwitchId w, std::int8_t p) {
        if (paths.size() >= kMaxPaths) return;
        if (w == src && p == 0) {
          SwitchRoute r;
          r.switches = {src};
          for (auto it = rev_links.rbegin(); it != rev_links.rend(); ++it) {
            r.switches.push_back(graph_.edge(*it).other(r.switches.back()));
            r.links.push_back(*it);
          }
          paths.push_back(std::move(r));
          return;
        }
        const auto dw =
            dist[static_cast<std::size_t>(p)][static_cast<std::size_t>(w)];
        for (topo::LinkId e : graph_.incident(w)) {
          const topo::SwitchId v = graph_.edge(e).other(w);
          const bool up_move = base_.is_up(e, v);  // move v -> w
          const std::int8_t np = up_move ? std::int8_t{0} : std::int8_t{1};
          if (np != p) continue;  // the forward move must land in phase p
          // Predecessor phases that could make this move: up moves need
          // phase 0; down moves can come from either phase.
          for (const std::int8_t pp :
               up_move ? std::vector<std::int8_t>{0}
                       : std::vector<std::int8_t>{0, 1}) {
            const auto dv = dist[static_cast<std::size_t>(pp)]
                                [static_cast<std::size_t>(v)];
            if (dv == kUnvisited || dv + 1 != dw) continue;
            rev_links.push_back(e);
            walk(v, pp);
            rev_links.pop_back();
            if (paths.size() >= kMaxPaths) return;
          }
        }
      };

  for (const std::int8_t p : {std::int8_t{0}, std::int8_t{1}}) {
    if (dist[static_cast<std::size_t>(p)][static_cast<std::size_t>(dst)] ==
        dmin) {
      walk(dst, p);
    }
  }

  std::sort(paths.begin(), paths.end(),
            [](const SwitchRoute& a, const SwitchRoute& b) {
              return a.switches < b.switches;
            });
  paths.erase(std::unique(paths.begin(), paths.end(),
                          [](const SwitchRoute& a, const SwitchRoute& b) {
                            return a.switches == b.switches;
                          }),
              paths.end());
  if (paths.empty()) {
    throw std::logic_error("MultipathUpDownRouter: no path collected (bug)");
  }
  return paths;
}

SwitchRoute MultipathUpDownRouter::route(topo::SwitchId src,
                                         topo::SwitchId dst) const {
  auto paths = all_shortest(src, dst);
  const std::uint64_t h =
      mix(salt_ ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                   << 32) ^
          static_cast<std::uint32_t>(dst));
  return paths[static_cast<std::size_t>(h % paths.size())];
}

}  // namespace nimcast::routing
