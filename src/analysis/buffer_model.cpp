#include "analysis/buffer_model.hpp"

#include <stdexcept>

namespace nimcast::analysis {
namespace {

void check(std::int32_t children, std::int32_t packets) {
  if (children < 1) throw std::invalid_argument("buffer model: children < 1");
  if (packets < 1) throw std::invalid_argument("buffer model: packets < 1");
}

}  // namespace

sim::Time fcfs_holding_time(std::int32_t children, std::int32_t packets,
                            sim::Time t_nd) {
  check(children, packets);
  const auto copies = static_cast<sim::Time::rep>(children - 1) *
                          static_cast<sim::Time::rep>(packets) +
                      1;
  return t_nd * copies;
}

sim::Time fpfs_holding_time(std::int32_t children, sim::Time t_nd) {
  check(children, 1);
  return t_nd * static_cast<sim::Time::rep>(children);
}

double fcfs_buffer_integral_us(std::int32_t children, std::int32_t packets,
                               sim::Time t_nd) {
  return static_cast<double>(packets) *
         fcfs_holding_time(children, packets, t_nd).as_us();
}

double fpfs_buffer_integral_us(std::int32_t children, std::int32_t packets,
                               sim::Time t_nd) {
  return static_cast<double>(packets) *
         fpfs_holding_time(children, t_nd).as_us();
}

}  // namespace nimcast::analysis
