#pragma once

#include <cstdint>

#include "core/coverage.hpp"
#include "core/optimal_k.hpp"
#include "netif/system_params.hpp"
#include "network/network_config.hpp"
#include "sim/sim_time.hpp"

namespace nimcast::analysis {

/// The paper's closed-form latency expressions (Sections 2.5, 2.6, 4.1).
///
/// Everything is in terms of t_step — the time to move one packet from
/// one NI to another: sender NI overhead + propagation + receiver NI
/// overhead. The model is exact on a contention-free network; the
/// simulator deviates from it by contention and by the finer-grained
/// overlap of NI send/receive occupancy.
class LatencyModel {
 public:
  LatencyModel(netif::SystemParams params, sim::Time t_step)
      : params_{params}, t_step_{t_step} {}

  /// Builds t_step from network parameters assuming an uncontended path
  /// of `hops` switch-switch links: t_snd + network flight + t_rcv.
  [[nodiscard]] static LatencyModel from_network(
      netif::SystemParams params, const net::NetworkConfig& net,
      std::size_t hops);

  [[nodiscard]] sim::Time t_step() const { return t_step_; }

  /// Generic pipelined multicast latency over a tree with first-packet
  /// step count `t1` and root child count `c_root` for `m` packets
  /// (Theorem 2): t_s + (t1 + (m-1) * c_root) * t_step + t_r.
  [[nodiscard]] sim::Time smart(std::int32_t t1, std::int32_t c_root,
                                std::int32_t m) const;

  /// Binomial tree over a smart NI, multicast set size n (>= 1).
  [[nodiscard]] sim::Time smart_binomial(std::int32_t n, std::int32_t m) const;

  /// Linear tree (chain) over a smart NI.
  [[nodiscard]] sim::Time smart_linear(std::int32_t n, std::int32_t m) const;

  /// Optimal k-binomial tree over a smart NI (Theorem 3).
  [[nodiscard]] sim::Time smart_optimal(std::int32_t n, std::int32_t m) const;

  /// Binomial tree over a *conventional* NI: every level pays the host
  /// software start-up and receive overheads again (Figure 4(a)):
  /// ceil(log2 n) * (t_s + m * t_step + t_r).
  [[nodiscard]] sim::Time conventional_binomial(std::int32_t n,
                                                std::int32_t m) const;

  /// Single-packet expressions of Section 2.5 (Figure 4), for reference:
  /// smart: t_s + ceil(log2 n) * t_step + t_r.
  [[nodiscard]] sim::Time smart_binomial_single(std::int32_t n) const {
    return smart_binomial(n, 1);
  }

  /// Our extension beyond the paper: a latency estimate calibrated to the
  /// asynchronous NI model, where the first packet pays full t_step per
  /// tree level but the pipeline interval is the NI coprocessor cycle
  /// t_rcv + k * t_snd (receive one packet, forward k copies) rather than
  /// k whole steps: t_s + t1 * t_step + (m-1)(t_rcv + k * t_snd) + t_r.
  [[nodiscard]] sim::Time pipelined_estimate(std::int32_t t1, std::int32_t k,
                                             std::int32_t m) const;

  /// Theorem 3 re-solved against pipelined_estimate: the fan-out bound a
  /// deployment should actually use on hardware whose NI overlaps send
  /// occupancy with the wire. Shifts the k -> 1 crossover later than the
  /// paper's step-model rule (see the calibrated-k ablation bench).
  struct CalibratedChoice {
    std::int32_t k = 1;
    std::int32_t t1 = 0;
    sim::Time latency;
  };
  [[nodiscard]] CalibratedChoice calibrated_optimal(std::int32_t n,
                                                    std::int32_t m) const;

 private:
  netif::SystemParams params_;
  sim::Time t_step_;
  mutable core::CoverageTable cov_;
};

}  // namespace nimcast::analysis
