#pragma once

#include <cstdint>

#include "sim/sim_time.hpp"

namespace nimcast::analysis {

/// Section 3.3.2 buffer-holding-time analysis.
///
/// t_nd is the time to push one packet copy from the NI queue to the
/// network adaptor (our t_snd). Under best-case zero inter-arrival delay:
///
///   FCFS: packet j stays buffered while (m - j + 1) packets finish going
///         to the first child, m packets go to each of the middle (c - 2)
///         children, and j packets go to the last child —
///         T_f = ((c - 1) * m + 1) * t_nd, independent of j.
///   FPFS: packet j leaves after its own c copies —
///         T_p = c * t_nd.
///
/// T_f >= T_p for every c >= 1, m >= 1, with equality only at m = 1 or
/// c = 1 — the paper's argument that FPFS needs less NI buffering.
[[nodiscard]] sim::Time fcfs_holding_time(std::int32_t children,
                                          std::int32_t packets,
                                          sim::Time t_nd);

[[nodiscard]] sim::Time fpfs_holding_time(std::int32_t children,
                                          sim::Time t_nd);

/// Aggregate buffer demand (packet * time) at one intermediate node for a
/// whole message: m packets each held for the per-packet holding time.
[[nodiscard]] double fcfs_buffer_integral_us(std::int32_t children,
                                             std::int32_t packets,
                                             sim::Time t_nd);
[[nodiscard]] double fpfs_buffer_integral_us(std::int32_t children,
                                             std::int32_t packets,
                                             sim::Time t_nd);

}  // namespace nimcast::analysis
