#include "analysis/latency_model.hpp"

#include <stdexcept>

namespace nimcast::analysis {

LatencyModel LatencyModel::from_network(netif::SystemParams params,
                                        const net::NetworkConfig& net,
                                        std::size_t hops) {
  const sim::Time flight =
      net.t_hop * (static_cast<sim::Time::rep>(hops) + 2) +
      net.serialization_time();
  return LatencyModel{params, params.t_snd + flight + params.t_rcv};
}

sim::Time LatencyModel::smart(std::int32_t t1, std::int32_t c_root,
                              std::int32_t m) const {
  if (m < 1) throw std::invalid_argument("LatencyModel::smart: m < 1");
  const auto steps = static_cast<sim::Time::rep>(t1) +
                     static_cast<sim::Time::rep>(m - 1) *
                         static_cast<sim::Time::rep>(c_root);
  return params_.t_s + t_step_ * steps + params_.t_r;
}

sim::Time LatencyModel::smart_binomial(std::int32_t n, std::int32_t m) const {
  if (n < 1) throw std::invalid_argument("smart_binomial: n < 1");
  const std::int32_t t1 = core::ceil_log2(static_cast<std::uint64_t>(n));
  return smart(t1, t1, m);
}

sim::Time LatencyModel::smart_linear(std::int32_t n, std::int32_t m) const {
  if (n < 1) throw std::invalid_argument("smart_linear: n < 1");
  return smart(n - 1, n > 1 ? 1 : 0, m);
}

sim::Time LatencyModel::smart_optimal(std::int32_t n, std::int32_t m) const {
  if (n == 1) return params_.t_s + params_.t_r;
  const core::OptimalChoice c =
      core::optimal_k(n, m, cov_);
  return smart(c.t1, c.k, m);
}

sim::Time LatencyModel::pipelined_estimate(std::int32_t t1, std::int32_t k,
                                           std::int32_t m) const {
  if (m < 1) throw std::invalid_argument("pipelined_estimate: m < 1");
  const sim::Time cycle = params_.t_rcv + params_.t_snd *
                                              static_cast<sim::Time::rep>(k);
  return params_.t_s + t_step_ * static_cast<sim::Time::rep>(t1) +
         cycle * static_cast<sim::Time::rep>(m - 1) + params_.t_r;
}

LatencyModel::CalibratedChoice LatencyModel::calibrated_optimal(
    std::int32_t n, std::int32_t m) const {
  if (n < 1 || m < 1) throw std::invalid_argument("calibrated_optimal");
  CalibratedChoice best;
  if (n == 1) {
    best.latency = params_.t_s + params_.t_r;
    return best;
  }
  bool have = false;
  const std::int32_t k_max = std::max<std::int32_t>(
      1, core::ceil_log2(static_cast<std::uint64_t>(n)));
  for (std::int32_t k = 1; k <= k_max; ++k) {
    const std::int32_t t1 = cov_.min_steps(static_cast<std::uint64_t>(n), k);
    const sim::Time latency = pipelined_estimate(t1, k, m);
    if (!have || latency < best.latency) {
      best = CalibratedChoice{k, t1, latency};
      have = true;
    }
  }
  return best;
}

sim::Time LatencyModel::conventional_binomial(std::int32_t n,
                                              std::int32_t m) const {
  if (n < 1 || m < 1) throw std::invalid_argument("conventional_binomial");
  const std::int32_t levels = core::ceil_log2(static_cast<std::uint64_t>(n));
  const sim::Time per_level = params_.t_s +
                              t_step_ * static_cast<sim::Time::rep>(m) +
                              params_.t_r;
  return per_level * static_cast<sim::Time::rep>(levels);
}

}  // namespace nimcast::analysis
