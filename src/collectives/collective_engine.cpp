#include "collectives/collective_engine.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "netif/buffer_tracker.hpp"
#include "netif/host.hpp"
#include "netif/serial_server.hpp"
#include "network/wormhole_network.hpp"
#include "sim/simulator.hpp"

namespace nimcast::collectives {

const char* to_string(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::kBroadcast: return "broadcast";
    case CollectiveKind::kScatter: return "scatter";
    case CollectiveKind::kGather: return "gather";
    case CollectiveKind::kReduce: return "reduce";
    case CollectiveKind::kAllReduce: return "allreduce";
  }
  return "?";
}

namespace {

constexpr net::MessageId kMessage = 1;
/// Packet tag values for reduce/allreduce phases; scatter/gather store a
/// host id (>= 0) in the tag instead.
constexpr std::int32_t kUpPhase = -2;
constexpr std::int32_t kDownPhase = -3;

/// Collective firmware model: one per participating host. Mirrors the
/// structure of netif::NetworkInterface (coprocessor SerialServer, t_rcv
/// receive processing in the low-priority lane, t_snd per injected copy)
/// but speaks the collective protocols instead of plain multicast
/// forwarding.
class CollectiveNi : public net::DeliverySink {
 public:
  CollectiveNi(sim::Simulator& simctx, net::WormholeNetwork& network,
               const CollectiveEngine::Config& cfg, CollectiveKind kind,
               topo::HostId self, topo::HostId parent,
               std::vector<topo::HostId> children, std::int32_t m,
               sim::Trace* trace)
      : sim_{simctx},
        network_{network},
        cfg_{cfg},
        kind_{kind},
        self_{self},
        parent_{parent},
        children_{std::move(children)},
        m_{m},
        trace_{trace},
        coproc_{simctx, cfg.params.ni_engines},
        buffer_{simctx} {
    network.bind_sink(self, this);
  }

  void on_packet_delivered(const net::Packet& packet) override {
    deliver(packet);
  }

  /// Fired when this NI's role in the collective is fulfilled (before
  /// the host's t_r).
  std::function<void(topo::HostId)> on_complete;
  /// Scatter: next tree hop per final destination.
  std::unordered_map<topo::HostId, topo::HostId> next_hop;
  /// Gather/reduce: number of direct children (reduce) or subtree
  /// descendants (gather) feeding this node.
  std::int32_t subtree_below = 0;

  [[nodiscard]] const netif::BufferTracker& buffer() const { return buffer_; }

  /// Source-side start, called after the host's t_s.
  void start() {
    switch (kind_) {
      case CollectiveKind::kBroadcast:
        // Packet-major FPFS over the children.
        for (std::int32_t j = 0; j < m_; ++j) {
          for (topo::HostId c : children_) send(c, j, kDownPhase);
        }
        break;
      case CollectiveKind::kScatter: {
        // Packet-major across destinations in chain order: packet 0 of
        // every destination first, then packet 1, ... — keeps every
        // subtree's pipeline fed (the FPFS principle applied to
        // personalized data).
        std::vector<topo::HostId> dests;
        for (const auto& [dest, hop] : next_hop) dests.push_back(dest);
        std::sort(dests.begin(), dests.end());
        for (std::int32_t j = 0; j < m_; ++j) {
          for (topo::HostId dest : dests) send(next_hop.at(dest), j, dest);
        }
        break;
      }
      case CollectiveKind::kGather:
        // Non-root nodes push their own message toward the root.
        if (parent_ != topo::kInvalidId) {
          for (std::int32_t j = 0; j < m_; ++j) send(parent_, j, self_);
        }
        break;
      case CollectiveKind::kReduce:
      case CollectiveKind::kAllReduce:
        // Leaves stream their contribution up; interior nodes hold
        // theirs as the initial partial result and wait for children.
        if (children_.empty() && parent_ != topo::kInvalidId) {
          for (std::int32_t j = 0; j < m_; ++j) send(parent_, j, kUpPhase);
        }
        break;
    }
  }

  void deliver(const net::Packet& packet) {
    buffer_.acquire();
    coproc_.enqueue_low(cfg_.params.t_rcv, [this, packet] {
      handle(packet);
    });
  }

 private:
  void send(topo::HostId to, std::int32_t index, std::int32_t tag) {
    coproc_.enqueue(cfg_.params.t_snd, [this, to, index, tag] {
      net::Packet p;
      p.message = kMessage;
      p.packet_index = index;
      p.packet_count = m_;
      p.sender = self_;
      p.dest = to;
      p.tag = tag;
      network_.send(p);
      if (trace_) {
        trace_->record(sim_.now(), sim::TraceCategory::kNi, self_,
                       "coll send pkt=" + std::to_string(index) + " tag=" +
                           std::to_string(tag) + " -> host " +
                           std::to_string(to));
      }
    });
  }

  void complete() {
    if (done_) throw std::logic_error("CollectiveNi: completed twice");
    done_ = true;
    if (on_complete) on_complete(self_);
  }

  void handle(const net::Packet& packet) {
    buffer_.release();
    switch (kind_) {
      case CollectiveKind::kBroadcast:
        for (topo::HostId c : children_) {
          send(c, packet.packet_index, kDownPhase);
        }
        if (++own_received_ == m_) complete();
        break;

      case CollectiveKind::kScatter:
        if (packet.tag == self_) {
          if (++own_received_ == m_) complete();
        } else {
          send(next_hop.at(packet.tag), packet.packet_index, packet.tag);
        }
        break;

      case CollectiveKind::kGather:
        if (parent_ == topo::kInvalidId) {
          // Root: done once every descendant's full message is in.
          if (++own_received_ == subtree_below * m_) complete();
        } else {
          send(parent_, packet.packet_index, packet.tag);
        }
        break;

      case CollectiveKind::kReduce:
      case CollectiveKind::kAllReduce:
        if (packet.tag == kUpPhase) {
          handle_up(packet.packet_index);
        } else {
          // Down phase (allreduce only): plain broadcast forwarding.
          for (topo::HostId c : children_) {
            send(c, packet.packet_index, kDownPhase);
          }
          if (++own_received_ == m_) complete();
        }
        break;
    }
  }

  /// Reduce up-phase: fold one child packet into the local partial
  /// result (t_comb of coprocessor time); when every child's j-th packet
  /// is folded, index j is ready to move up (or, at the root, is final).
  void handle_up(std::int32_t index) {
    coproc_.enqueue(cfg_.t_comb, [this, index] {
      auto& folded = folded_[index];
      ++folded;
      if (folded < static_cast<std::int32_t>(children_.size())) return;
      if (parent_ != topo::kInvalidId) {
        send(parent_, index, kUpPhase);
      } else {
        if (kind_ == CollectiveKind::kAllReduce) {
          // Pipeline the finished index straight back down; the root
          // itself holds the full result once every index has folded.
          for (topo::HostId c : children_) send(c, index, kDownPhase);
        }
        if (++reduced_indexes_ == m_) complete();
      }
    });
  }

  sim::Simulator& sim_;
  net::WormholeNetwork& network_;
  const CollectiveEngine::Config& cfg_;
  CollectiveKind kind_;
  topo::HostId self_;
  topo::HostId parent_;
  std::vector<topo::HostId> children_;
  std::int32_t m_;
  sim::Trace* trace_;
  netif::SerialServer coproc_;
  netif::BufferTracker buffer_;

  std::int32_t own_received_ = 0;
  std::unordered_map<std::int32_t, std::int32_t> folded_;
  std::int32_t reduced_indexes_ = 0;
  bool done_ = false;
};

}  // namespace

CollectiveEngine::CollectiveEngine(const topo::Topology& topology,
                                   const routing::RouteTable& routes,
                                   Config config, sim::Trace* trace)
    : topology_{topology}, routes_{routes}, config_{config}, trace_{trace} {}

CollectiveResult CollectiveEngine::run(CollectiveKind kind,
                                       const core::HostTree& tree,
                                       std::int32_t m) const {
  if (m < 1) throw std::invalid_argument("CollectiveEngine::run: m < 1");
  if (tree.size() < 2) {
    throw std::invalid_argument("CollectiveEngine::run: need >= 2 nodes");
  }
  for (topo::HostId h : tree.nodes) {
    if (h < 0 || h >= topology_.num_hosts()) {
      throw std::invalid_argument("CollectiveEngine::run: host out of range");
    }
  }

  sim::Simulator simctx;
  net::WormholeNetwork network{simctx, topology_, routes_, config_.network,
                               trace_};

  // Parents and subtree structure from the tree.
  std::unordered_map<topo::HostId, topo::HostId> parent;
  parent[tree.root] = topo::kInvalidId;
  for (const auto& [v, kids] : tree.children) {
    for (topo::HostId c : kids) parent[c] = v;
  }

  // Subtree membership for scatter next-hop and gather counting:
  // post-order accumulation.
  std::unordered_map<topo::HostId, std::vector<topo::HostId>> subtree;
  {
    // Children-first order via reverse BFS.
    std::vector<topo::HostId> order{tree.root};
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (topo::HostId c : tree.children.at(order[i])) order.push_back(c);
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      auto& mine = subtree[*it];
      mine.push_back(*it);
      for (topo::HostId c : tree.children.at(*it)) {
        const auto& sub = subtree[c];
        mine.insert(mine.end(), sub.begin(), sub.end());
      }
    }
  }

  std::unordered_map<topo::HostId, std::unique_ptr<CollectiveNi>> nis;
  std::unordered_map<topo::HostId, std::unique_ptr<netif::Host>> hosts;
  for (topo::HostId h : tree.nodes) {
    nis.emplace(h, std::make_unique<CollectiveNi>(
                       simctx, network, config_, kind, h, parent.at(h),
                       tree.children.at(h), m, trace_));
    hosts.emplace(h, std::make_unique<netif::Host>(simctx, h, config_.params));
  }
  for (topo::HostId h : tree.nodes) {
    auto& ni = *nis.at(h);
    ni.subtree_below = static_cast<std::int32_t>(subtree.at(h).size()) - 1;
    for (topo::HostId c : tree.children.at(h)) {
      for (topo::HostId d : subtree.at(c)) ni.next_hop.emplace(d, c);
    }
  }

  CollectiveResult result;
  std::size_t expected_completions = 0;
  switch (kind) {
    case CollectiveKind::kBroadcast:
    case CollectiveKind::kScatter:
      expected_completions = static_cast<std::size_t>(tree.size()) - 1;
      break;
    case CollectiveKind::kGather:
    case CollectiveKind::kReduce:
      expected_completions = 1;
      break;
    case CollectiveKind::kAllReduce:
      expected_completions = static_cast<std::size_t>(tree.size());
      break;
  }
  for (topo::HostId h : tree.nodes) {
    nis.at(h)->on_complete = [&, h](topo::HostId) {
      hosts.at(h)->software_receive(
          [&, h] { result.completions.emplace_back(h, simctx.now()); });
    };
  }

  // Start-up: who pays t_s before their NI acts.
  const auto start_host = [&](topo::HostId h) {
    hosts.at(h)->software_send([&nis, h] { nis.at(h)->start(); });
  };
  switch (kind) {
    case CollectiveKind::kBroadcast:
    case CollectiveKind::kScatter:
      start_host(tree.root);
      break;
    case CollectiveKind::kGather:
      for (topo::HostId h : tree.nodes) {
        if (h != tree.root) start_host(h);
      }
      break;
    case CollectiveKind::kReduce:
    case CollectiveKind::kAllReduce:
      // Everyone contributes data: every host pays the send start-up
      // (the root's moves its own partial result to the NI).
      for (topo::HostId h : tree.nodes) start_host(h);
      break;
  }

  simctx.run();
  if (network.in_flight() != 0) {
    throw std::runtime_error("CollectiveEngine: network deadlock");
  }
  if (result.completions.size() != expected_completions) {
    throw std::runtime_error("CollectiveEngine: " + std::string(to_string(kind)) +
                             " did not complete everywhere");
  }
  for (const auto& [h, t] : result.completions) {
    result.latency = std::max(result.latency, t);
  }
  for (topo::HostId h : tree.nodes) {
    result.peak_ni_buffer =
        std::max(result.peak_ni_buffer, nis.at(h)->buffer().peak());
  }
  result.packets_injected = network.packets_delivered();
  result.total_channel_block_time = network.total_block_time();
  return result;
}

}  // namespace nimcast::collectives
