#include "collectives/collective_engine.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "mcast/tree_repair.hpp"
#include "netif/buffer_tracker.hpp"
#include "netif/host.hpp"
#include "netif/serial_server.hpp"
#include "network/wormhole_network.hpp"
#include "routing/repair.hpp"
#include "sim/simulator.hpp"

namespace nimcast::collectives {

const char* to_string(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::kBroadcast: return "broadcast";
    case CollectiveKind::kScatter: return "scatter";
    case CollectiveKind::kGather: return "gather";
    case CollectiveKind::kReduce: return "reduce";
    case CollectiveKind::kAllReduce: return "allreduce";
  }
  return "?";
}

const char* to_string(RepairMode m) {
  switch (m) {
    case RepairMode::kFailFast: return "fail-fast";
    case RepairMode::kDegradeAndContinue: return "degrade-and-continue";
  }
  return "?";
}

std::int32_t CollectiveResult::delivered_count() const {
  std::int32_t n = 0;
  for (const auto& p : participants) n += p.delivered ? 1 : 0;
  return n;
}

double CollectiveResult::delivery_ratio() const {
  if (participants.empty()) return 1.0;
  return static_cast<double>(delivered_count()) /
         static_cast<double>(participants.size());
}

std::vector<topo::HostId> CollectiveResult::survivors() const {
  std::vector<topo::HostId> out;
  for (const auto& p : participants) {
    if (p.reachable) out.push_back(p.host);
  }
  return out;
}

namespace {

constexpr net::MessageId kMessage = 1;
/// Packet tag values for reduce/allreduce phases; scatter/gather store a
/// host id (>= 0) in the tag instead.
constexpr std::int32_t kUpPhase = -2;
constexpr std::int32_t kDownPhase = -3;

/// Collective firmware model: one per participating host (and one per
/// repair round the host takes part in — each round rebinds a fresh
/// instance). Mirrors the structure of netif::NetworkInterface
/// (coprocessor SerialServer, t_rcv receive processing in the
/// low-priority lane, t_snd per injected copy) but speaks the collective
/// protocols instead of plain multicast forwarding.
class CollectiveNi : public net::DeliverySink {
 public:
  CollectiveNi(sim::Simulator& simctx, net::WormholeNetwork& network,
               const CollectiveEngine::Config& cfg, CollectiveKind kind,
               topo::HostId self, topo::HostId parent,
               std::vector<topo::HostId> children, std::int32_t m,
               sim::Trace* trace)
      : sim_{simctx},
        network_{network},
        cfg_{cfg},
        kind_{kind},
        self_{self},
        parent_{parent},
        children_{std::move(children)},
        m_{m},
        trace_{trace},
        coproc_{simctx, cfg.params.ni_engines},
        buffer_{simctx} {
    network.bind_sink(self, this);
  }

  void on_packet_delivered(const net::Packet& packet) override {
    deliver(packet);
  }

  /// Fired when this NI's role in the collective is fulfilled (before
  /// the host's t_r).
  std::function<void(topo::HostId)> on_complete;
  /// Gather root only: fired when one source's full m-packet message has
  /// arrived (fault accounting — the root may gather some sources and
  /// lose others).
  std::function<void(topo::HostId)> on_source_complete;
  /// Scatter: next tree hop per final destination.
  std::unordered_map<topo::HostId, topo::HostId> next_hop;
  /// Gather/reduce: number of direct children (reduce) or subtree
  /// descendants (gather) feeding this node.
  std::int32_t subtree_below = 0;

  /// Reduce/allreduce: direct children whose every up-phase packet has
  /// folded into this node's partial — their whole subtree's contribution
  /// is in. The root queries this after an incomplete round to salvage
  /// already-folded subtrees instead of restarting the reduce from
  /// scratch.
  [[nodiscard]] std::vector<topo::HostId> fully_folded_children() const {
    std::vector<topo::HostId> out;
    for (topo::HostId c : children_) {
      if (auto it = child_folded_.find(c);
          it != child_folded_.end() && it->second == m_) {
        out.push_back(c);
      }
    }
    return out;
  }

  [[nodiscard]] const netif::BufferTracker& buffer() const { return buffer_; }

  /// Source-side start, called after the host's t_s.
  void start() {
    switch (kind_) {
      case CollectiveKind::kBroadcast:
        // Packet-major FPFS over the children.
        for (std::int32_t j = 0; j < m_; ++j) {
          for (topo::HostId c : children_) send(c, j, kDownPhase);
        }
        break;
      case CollectiveKind::kScatter: {
        // Packet-major across destinations in chain order: packet 0 of
        // every destination first, then packet 1, ... — keeps every
        // subtree's pipeline fed (the FPFS principle applied to
        // personalized data).
        std::vector<topo::HostId> dests;
        for (const auto& [dest, hop] : next_hop) dests.push_back(dest);
        std::sort(dests.begin(), dests.end());
        for (std::int32_t j = 0; j < m_; ++j) {
          for (topo::HostId dest : dests) send(next_hop.at(dest), j, dest);
        }
        break;
      }
      case CollectiveKind::kGather:
        // Non-root nodes push their own message toward the root.
        if (parent_ != topo::kInvalidId) {
          for (std::int32_t j = 0; j < m_; ++j) send(parent_, j, self_);
        }
        break;
      case CollectiveKind::kReduce:
      case CollectiveKind::kAllReduce:
        // Leaves stream their contribution up; interior nodes hold
        // theirs as the initial partial result and wait for children.
        if (children_.empty() && parent_ != topo::kInvalidId) {
          for (std::int32_t j = 0; j < m_; ++j) send(parent_, j, kUpPhase);
        }
        break;
    }
  }

  void deliver(const net::Packet& packet) {
    buffer_.acquire();
    coproc_.enqueue_low(cfg_.params.t_rcv, [this, packet] {
      handle(packet);
    });
  }

 private:
  void send(topo::HostId to, std::int32_t index, std::int32_t tag) {
    coproc_.enqueue(cfg_.params.t_snd, [this, to, index, tag] {
      net::Packet p;
      p.message = kMessage;
      p.packet_index = index;
      p.packet_count = m_;
      p.sender = self_;
      p.dest = to;
      p.tag = tag;
      network_.send(p);
      if (trace_) {
        trace_->record(sim_.now(), sim::TraceCategory::kNi, self_,
                       "coll send pkt=" + std::to_string(index) + " tag=" +
                           std::to_string(tag) + " -> host " +
                           std::to_string(to));
      }
    });
  }

  void complete() {
    if (done_) throw std::logic_error("CollectiveNi: completed twice");
    done_ = true;
    if (on_complete) on_complete(self_);
  }

  void handle(const net::Packet& packet) {
    buffer_.release();
    switch (kind_) {
      case CollectiveKind::kBroadcast:
        for (topo::HostId c : children_) {
          send(c, packet.packet_index, kDownPhase);
        }
        if (++own_received_ == m_) complete();
        break;

      case CollectiveKind::kScatter:
        if (packet.tag == self_) {
          if (++own_received_ == m_) complete();
        } else {
          send(next_hop.at(packet.tag), packet.packet_index, packet.tag);
        }
        break;

      case CollectiveKind::kGather:
        if (parent_ == topo::kInvalidId) {
          // Root: per-source accounting (a faulty fabric may gather some
          // sources whole and lose others); done once every descendant's
          // full message is in.
          auto& got = source_received_[packet.tag];
          if (++got == m_ && on_source_complete) {
            on_source_complete(static_cast<topo::HostId>(packet.tag));
          }
          if (++own_received_ == subtree_below * m_) complete();
        } else {
          send(parent_, packet.packet_index, packet.tag);
        }
        break;

      case CollectiveKind::kReduce:
      case CollectiveKind::kAllReduce:
        if (packet.tag == kUpPhase) {
          handle_up(packet.sender, packet.packet_index);
        } else {
          // Down phase (allreduce only): plain broadcast forwarding.
          for (topo::HostId c : children_) {
            send(c, packet.packet_index, kDownPhase);
          }
          if (++own_received_ == m_) complete();
        }
        break;
    }
  }

  /// Reduce up-phase: fold one child packet into the local partial
  /// result (t_comb of coprocessor time); when every child's j-th packet
  /// is folded, index j is ready to move up (or, at the root, is final).
  void handle_up(topo::HostId from, std::int32_t index) {
    coproc_.enqueue(cfg_.t_comb, [this, from, index] {
      ++child_folded_[from];
      auto& folded = folded_[index];
      ++folded;
      if (folded < static_cast<std::int32_t>(children_.size())) return;
      if (parent_ != topo::kInvalidId) {
        send(parent_, index, kUpPhase);
      } else {
        if (kind_ == CollectiveKind::kAllReduce) {
          // Pipeline the finished index straight back down; the root
          // itself holds the full result once every index has folded.
          for (topo::HostId c : children_) send(c, index, kDownPhase);
        }
        if (++reduced_indexes_ == m_) complete();
      }
    });
  }

  sim::Simulator& sim_;
  net::WormholeNetwork& network_;
  const CollectiveEngine::Config& cfg_;
  CollectiveKind kind_;
  topo::HostId self_;
  topo::HostId parent_;
  std::vector<topo::HostId> children_;
  std::int32_t m_;
  sim::Trace* trace_;
  netif::SerialServer coproc_;
  netif::BufferTracker buffer_;

  std::int32_t own_received_ = 0;
  std::unordered_map<std::int32_t, std::int32_t> folded_;
  std::unordered_map<topo::HostId, std::int32_t> child_folded_;
  std::unordered_map<std::int32_t, std::int32_t> source_received_;
  std::int32_t reduced_indexes_ = 0;
  bool done_ = false;
};

}  // namespace

CollectiveEngine::CollectiveEngine(const topo::Topology& topology,
                                   const routing::RouteTable& routes,
                                   Config config, sim::Trace* trace)
    : topology_{topology}, routes_{routes}, config_{config}, trace_{trace} {}

CollectiveResult CollectiveEngine::run(CollectiveKind kind,
                                       const core::HostTree& tree,
                                       std::int32_t m) const {
  if (m < 1) throw std::invalid_argument("CollectiveEngine::run: m < 1");
  if (tree.size() < 2) {
    throw std::invalid_argument("CollectiveEngine::run: need >= 2 nodes");
  }
  for (topo::HostId h : tree.nodes) {
    if (h < 0 || h >= topology_.num_hosts()) {
      throw std::invalid_argument("CollectiveEngine::run: host out of range");
    }
  }

  const bool faulty = !config_.network.faults.empty();
  const topo::HostId root = tree.root;

  sim::Simulator simctx;
  net::WormholeNetwork network{simctx, topology_, routes_, config_.network,
                               trace_};

  // Fault-time route repair, identical to the multicast engine's: rebuild
  // up*/down* on the surviving subgraph and rebind on *every* switch-graph
  // fault event — kLinkUp recoveries included, each with a fresh epoch.
  // kHostDown leaves the switch graph intact, so no rebuild. Multi-VC
  // tables (dateline tori) cannot be rebuilt — fail loudly rather than
  // silently running stale.
  std::vector<std::unique_ptr<routing::RouteTable>> repaired_tables;
  if (faulty && config_.repair.reroute) {
    if (routes_.virtual_channels() != 1) {
      throw std::invalid_argument(
          "CollectiveEngine: fault-time reroute cannot rebuild a multi-VC "
          "route table (dateline torus); set RepairPolicy::reroute = false "
          "to run degraded on the original routes");
    }
    network.on_fault = [&](const net::FaultEvent& ev) {
      if (ev.kind == net::FaultKind::kHostDown) return;
      auto table = routing::rebuild_updown(
          topology_, network.fault_state(),
          static_cast<std::int32_t>(repaired_tables.size()) + 1);
      network.rebind_routes(*table);
      repaired_tables.push_back(std::move(table));
    };
  }

  CollectiveResult result;

  // Cross-round fault bookkeeping. `completed` is the per-host semantic
  // marker (own message in / holds the result); `gathered` maps a gather
  // source to the instant its full message reached the round root;
  // `root_done` means a round root finished combining (reduce/allreduce
  // up phase), and `contributors` is the union of the achieving round's
  // up-phase participants and everything salvaged from earlier rounds —
  // the reduce-correctness accounting. `eff_root` is the initiator in
  // force: the tree's root until it dies and RepairPolicy::root_handoff
  // elects a replacement. `salvaged` accumulates hosts whose reduce
  // contribution already folded into the live root's partial (they are
  // not re-run); `root_ni`/`root_subtrees` expose the latest up-phase
  // round's root firmware and its per-child subtree membership, which is
  // what the salvage computation reads.
  std::vector<std::unique_ptr<CollectiveNi>> arena;
  std::unordered_map<topo::HostId, std::unique_ptr<netif::Host>> hosts;
  std::unordered_set<topo::HostId> completed;
  std::unordered_map<topo::HostId, sim::Time> gathered;
  bool root_done = false;
  std::vector<topo::HostId> up_nodes;
  std::vector<topo::HostId> contributors;
  topo::HostId eff_root = root;
  std::unordered_set<topo::HostId> salvaged;
  CollectiveNi* root_ni = nullptr;
  std::unordered_map<topo::HostId, std::vector<topo::HostId>> root_subtrees;

  // Builds fresh per-round firmware over `t`, rebinding the network
  // sinks of every participant, and schedules the round's start-up
  // (immediately for the initial attempt, at `start` for repair rounds).
  const auto launch = [&](const core::HostTree& t, CollectiveKind kind2,
                          sim::Time start) {
    // Parents and subtree structure from the round's tree.
    std::unordered_map<topo::HostId, topo::HostId> parent;
    parent[t.root] = topo::kInvalidId;
    for (const auto& [v, kids] : t.children) {
      for (topo::HostId c : kids) parent[c] = v;
    }

    // Subtree membership for scatter next-hop and gather counting:
    // post-order accumulation via reverse BFS.
    std::unordered_map<topo::HostId, std::vector<topo::HostId>> subtree;
    {
      std::vector<topo::HostId> order{t.root};
      for (std::size_t i = 0; i < order.size(); ++i) {
        for (topo::HostId c : t.children.at(order[i])) order.push_back(c);
      }
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        auto& mine = subtree[*it];
        mine.push_back(*it);
        for (topo::HostId c : t.children.at(*it)) {
          const auto& sub = subtree[c];
          mine.insert(mine.end(), sub.begin(), sub.end());
        }
      }
    }

    std::unordered_map<topo::HostId, CollectiveNi*> nis;
    for (topo::HostId h : t.nodes) {
      arena.push_back(std::make_unique<CollectiveNi>(
          simctx, network, config_, kind2, h, parent.at(h), t.children.at(h),
          m, trace_));
      nis.emplace(h, arena.back().get());
      if (hosts.find(h) == hosts.end()) {
        hosts.emplace(h,
                      std::make_unique<netif::Host>(simctx, h, config_.params));
      }
    }
    for (topo::HostId h : t.nodes) {
      auto& ni = *nis.at(h);
      ni.subtree_below = static_cast<std::int32_t>(subtree.at(h).size()) - 1;
      for (topo::HostId c : t.children.at(h)) {
        for (topo::HostId d : subtree.at(c)) ni.next_hop.emplace(d, c);
      }
    }

    const bool up_kind = kind2 == CollectiveKind::kReduce ||
                         kind2 == CollectiveKind::kAllReduce;
    const topo::HostId round_root = t.root;
    if (up_kind) {
      up_nodes = t.nodes;
      root_ni = nis.at(round_root);
      root_subtrees.clear();
      for (topo::HostId c : t.children.at(round_root)) {
        root_subtrees.emplace(c, subtree.at(c));
      }
    }
    for (topo::HostId h : t.nodes) {
      auto& ni = *nis.at(h);
      ni.on_complete = [&, h, up_kind, round_root](topo::HostId) {
        if (up_kind && h == round_root && !root_done) {
          root_done = true;
          // The achieving round's participants plus everything salvaged
          // from earlier rounds, in original tree order.
          std::unordered_set<topo::HostId> cset{up_nodes.begin(),
                                                up_nodes.end()};
          cset.insert(salvaged.begin(), salvaged.end());
          contributors.clear();
          for (topo::HostId x : tree.nodes) {
            if (cset.count(x) != 0) contributors.push_back(x);
          }
        }
        // A host keeps one semantic completion across repair rounds.
        if (!completed.insert(h).second) return;
        hosts.at(h)->software_receive(
            [&, h] { result.completions.emplace_back(h, simctx.now()); });
      };
      if (kind2 == CollectiveKind::kGather && h == round_root) {
        ni.on_source_complete = [&](topo::HostId src) {
          gathered.emplace(src, simctx.now());
        };
      }
    }

    // Start-up: who pays t_s before their NI acts.
    const auto start_host = [&nis, &hosts](topo::HostId h) {
      CollectiveNi* ni = nis.at(h);
      hosts.at(h)->software_send([ni] { ni->start(); });
    };
    const auto start_all = [&] {
      switch (kind2) {
        case CollectiveKind::kBroadcast:
        case CollectiveKind::kScatter:
          start_host(t.root);
          break;
        case CollectiveKind::kGather:
          for (topo::HostId h : t.nodes) {
            if (h != t.root) start_host(h);
          }
          break;
        case CollectiveKind::kReduce:
        case CollectiveKind::kAllReduce:
          // Everyone contributes data: every host pays the send start-up
          // (the root's moves its own partial result to the NI).
          for (topo::HostId h : t.nodes) start_host(h);
          break;
      }
    };
    if (start == sim::Time::zero()) {
      start_all();
    } else {
      // Repair rounds start after the backoff; the starters capture the
      // round's NI pointers, which outlive the run in `arena`.
      std::vector<topo::HostId> starters;
      switch (kind2) {
        case CollectiveKind::kBroadcast:
        case CollectiveKind::kScatter:
          starters.push_back(t.root);
          break;
        case CollectiveKind::kGather:
          for (topo::HostId h : t.nodes) {
            if (h != t.root) starters.push_back(h);
          }
          break;
        case CollectiveKind::kReduce:
        case CollectiveKind::kAllReduce:
          starters = t.nodes;
          break;
      }
      for (topo::HostId h : starters) {
        CollectiveNi* ni = nis.at(h);
        netif::Host* host = hosts.at(h).get();
        simctx.schedule_at(
            start, [ni, host] { host->software_send([ni] { ni->start(); }); });
      }
    }
  };

  const auto check_drained = [&] {
    if (network.in_flight() != 0) {
      throw std::runtime_error("CollectiveEngine: network deadlock");
    }
  };

  const auto n_participants = static_cast<std::size_t>(tree.size()) - 1;
  const auto op_complete = [&]() -> bool {
    switch (kind) {
      case CollectiveKind::kBroadcast:
      case CollectiveKind::kScatter:
        return completed.size() == n_participants;
      case CollectiveKind::kGather:
        return gathered.size() == n_participants;
      case CollectiveKind::kReduce:
        return root_done;
      case CollectiveKind::kAllReduce:
        return root_done && completed.size() == n_participants + 1;
    }
    return false;
  };

  launch(tree, kind, sim::Time::zero());
  simctx.run();
  check_drained();

  if (!faulty && !op_complete()) {
    throw std::runtime_error("CollectiveEngine: " +
                             std::string(to_string(kind)) +
                             " did not complete everywhere");
  }
  if (faulty && config_.mode == RepairMode::kFailFast && !op_complete()) {
    throw std::runtime_error("CollectiveEngine: " +
                             std::string(to_string(kind)) +
                             " incomplete under faults (fail-fast)");
  }

  // Tree repair: re-parent the still-needy, still-reachable participants
  // into a fresh k-binomial tree in contention-free order (the shared
  // mcast::plan_repair_tree) and re-run. Broadcast/scatter/gather rounds
  // resend only what is missing; a reduce round re-folds only the missing
  // contributors — subtrees whose up-phase packets all reached the live
  // root are salvaged from its partial; an allreduce with a complete up
  // phase but lost down-phase deliveries re-broadcasts the root's result
  // to whoever missed it. When the initiator itself died,
  // RepairPolicy::root_handoff elects the lowest-ranked (tree-order)
  // alive participant that still holds what the round must send — any
  // result holder for broadcast and post-up-phase allreduce, any
  // survivor for gather/reduce (each holds its own contribution) — and
  // re-roots the repair there. Scatter never hands off: the personalized
  // payloads died with the root.
  if (faulty && config_.mode == RepairMode::kDegradeAndContinue &&
      config_.repair.max_attempts > 0) {
    // Folds the root-side salvage state into `salvaged`: the live round
    // root's own contribution plus every subtree whose up-phase packets
    // all folded into its partial.
    const auto salvage = [&] {
      salvaged.insert(eff_root);
      if (root_ni == nullptr) return;
      for (topo::HostId c : root_ni->fully_folded_children()) {
        for (topo::HostId d : root_subtrees.at(c)) salvaged.insert(d);
      }
    };
    for (std::int32_t round = 1; round <= config_.repair.max_attempts;
         ++round) {
      if (op_complete()) break;
      if (!network.host_alive(eff_root)) {
        if (!config_.repair.root_handoff || kind == CollectiveKind::kScatter) {
          break;
        }
        // Election is deterministic and happens at most once per run:
        // every fault event fires during the first drain, so liveness is
        // stable by the time repair begins.
        const bool need_result_holder =
            kind == CollectiveKind::kBroadcast ||
            (kind == CollectiveKind::kAllReduce && root_done);
        topo::HostId elected = topo::kInvalidId;
        for (topo::HostId h : tree.nodes) {
          if (h == eff_root || !network.host_alive(h)) continue;
          if (need_result_holder && completed.count(h) == 0) continue;
          elected = h;
          break;
        }
        if (elected == topo::kInvalidId) break;  // payload died with the root
        eff_root = elected;
        ++result.root_handoffs;
        if (kind == CollectiveKind::kGather) {
          // The partially gathered data died with the old root; sources
          // re-send everything to the replacement, whose own message is
          // already local.
          gathered.clear();
          gathered.emplace(eff_root, simctx.now());
        }
        if (kind == CollectiveKind::kReduce ||
            (kind == CollectiveKind::kAllReduce && !root_done)) {
          // The old root's partial died with it: nothing is salvaged.
          salvaged.clear();
          root_ni = nullptr;
        }
      }
      CollectiveKind round_kind = kind;
      std::function<bool(topo::HostId)> needs;
      switch (kind) {
        case CollectiveKind::kBroadcast:
        case CollectiveKind::kScatter:
          needs = [&](topo::HostId h) { return completed.count(h) == 0; };
          break;
        case CollectiveKind::kGather:
          needs = [&](topo::HostId h) { return gathered.count(h) == 0; };
          break;
        case CollectiveKind::kReduce:
          salvage();
          needs = [&](topo::HostId h) { return salvaged.count(h) == 0; };
          break;
        case CollectiveKind::kAllReduce:
          if (root_done) {
            round_kind = CollectiveKind::kBroadcast;
            needs = [&](topo::HostId h) { return completed.count(h) == 0; };
          } else {
            salvage();
            needs = [&](topo::HostId h) { return salvaged.count(h) == 0; };
          }
          break;
      }
      const auto rtree = mcast::plan_repair_tree(
          eff_root, tree.nodes, needs,
          [&](topo::HostId h) { return network.reachable(eff_root, h); },
          tree.root_children());
      if (!rtree) break;
      ++result.repairs;
      const sim::Time wait =
          config_.repair.backoff * (sim::Time::rep{1} << (round - 1));
      launch(*rtree, round_kind, simctx.now() + wait);
      simctx.run();
      check_drained();
    }
  }

  for (const auto& [h, t] : result.completions) {
    result.latency = std::max(result.latency, t);
  }
  for (const auto& ni : arena) {
    result.peak_ni_buffer = std::max(result.peak_ni_buffer,
                                     ni->buffer().peak());
  }
  result.packets_injected = network.packets_delivered();
  result.total_channel_block_time = network.total_block_time();

  result.effective_root = eff_root;
  if (faulty) {
    result.root_alive = network.host_alive(eff_root);
    result.faults_applied = network.faults_applied();
    result.route_epoch = network.routes().epoch();
    result.contributors = contributors;
    sim::Time root_completed_at;
    for (const auto& [h, t] : result.completions) {
      if (h == eff_root) root_completed_at = t;
    }
    const std::unordered_set<topo::HostId> contrib_set{contributors.begin(),
                                                       contributors.end()};
    for (topo::HostId h : tree.nodes) {
      if (h == root) continue;
      mcast::DestinationStatus st;
      st.host = h;
      st.reachable = network.reachable(eff_root, h);
      switch (kind) {
        case CollectiveKind::kBroadcast:
        case CollectiveKind::kScatter:
        case CollectiveKind::kAllReduce:
          st.delivered = completed.count(h) != 0;
          break;
        case CollectiveKind::kGather:
          if (auto it = gathered.find(h); it != gathered.end()) {
            st.delivered = true;
            st.completed_at = it->second;
          }
          break;
        case CollectiveKind::kReduce:
          // Contribution folded into the root's final result; stamped
          // with the root's completion since folds are unattributable.
          st.delivered = root_done && contrib_set.count(h) != 0;
          st.completed_at = root_completed_at;
          break;
      }
      result.participants.push_back(st);
    }
    if (kind == CollectiveKind::kBroadcast ||
        kind == CollectiveKind::kScatter ||
        kind == CollectiveKind::kAllReduce) {
      std::unordered_map<topo::HostId, sim::Time> done;
      for (const auto& [h, t] : result.completions) done.emplace(h, t);
      for (auto& st : result.participants) {
        if (auto it = done.find(st.host); it != done.end()) {
          st.completed_at = it->second;
        }
      }
    }
    const auto delivered = static_cast<std::size_t>(result.delivered_count());
    result.outcome = delivered == n_participants
                         ? mcast::Outcome::kComplete
                         : (delivered == 0 ? mcast::Outcome::kFailed
                                           : mcast::Outcome::kPartial);
  }
  return result;
}

}  // namespace nimcast::collectives
