#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/host_tree.hpp"
#include "netif/system_params.hpp"
#include "network/network_config.hpp"
#include "routing/route_table.hpp"
#include "sim/sim_time.hpp"
#include "sim/trace.hpp"
#include "topology/topology.hpp"

namespace nimcast::collectives {

/// Collective operations built on packetization + smart NI support — the
/// paper's Section 7 future-work direction, implemented over the same
/// substrate as the multicast engine.
///
/// All operations run over a (contention-free) tree of participants and
/// pipeline at packet granularity in the FPFS spirit: a packet moves as
/// soon as it is ready, independent of the rest of its message.
enum class CollectiveKind : std::uint8_t {
  kBroadcast,  ///< root's message to every node (multicast to all)
  kScatter,    ///< root sends a distinct m-packet message to every node
  kGather,     ///< every node sends a distinct m-packet message to root
  kReduce,     ///< in-network combining up the tree; result at root
  kAllReduce,  ///< reduce, then the result pipelined back down
};

[[nodiscard]] const char* to_string(CollectiveKind k);

/// Outcome of one collective.
struct CollectiveResult {
  /// Operation start to the completion at the last host that must finish
  /// (all non-roots for scatter/broadcast/allreduce, the root for
  /// gather/reduce). Includes the host software overheads.
  sim::Time latency;
  /// Per-host completion times for hosts with a completion semantic.
  std::vector<std::pair<topo::HostId, sim::Time>> completions;
  std::int64_t packets_injected = 0;
  sim::Time total_channel_block_time;
  double peak_ni_buffer = 0.0;
};

/// Runs collectives on the full simulated system. Stateless between
/// calls: each run builds a fresh simulation over the shared
/// (topology, routes).
class CollectiveEngine {
 public:
  struct Config {
    netif::SystemParams params;
    net::NetworkConfig network;
    /// NI coprocessor occupancy to combine one received packet into the
    /// local partial result (reduce/allreduce). Modeled on the NI — the
    /// in-network-computing assumption; set high to model host-assisted
    /// combining.
    sim::Time t_comb = sim::Time::us(1.0);
  };

  CollectiveEngine(const topo::Topology& topology,
                   const routing::RouteTable& routes, Config config,
                   sim::Trace* trace = nullptr);

  /// `tree.root` initiates; `m` is the per-message packet count (for
  /// scatter/gather: per destination/source; for broadcast/reduce: of
  /// the single logical message).
  [[nodiscard]] CollectiveResult run(CollectiveKind kind,
                                     const core::HostTree& tree,
                                     std::int32_t m) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  const topo::Topology& topology_;
  const routing::RouteTable& routes_;
  Config config_;
  sim::Trace* trace_;
};

}  // namespace nimcast::collectives
