#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/host_tree.hpp"
#include "mcast/multicast_engine.hpp"
#include "netif/system_params.hpp"
#include "network/network_config.hpp"
#include "routing/route_table.hpp"
#include "sim/sim_time.hpp"
#include "sim/trace.hpp"
#include "topology/topology.hpp"

namespace nimcast::collectives {

/// Collective operations built on packetization + smart NI support — the
/// paper's Section 7 future-work direction, implemented over the same
/// substrate as the multicast engine.
///
/// All operations run over a (contention-free) tree of participants and
/// pipeline at packet granularity in the FPFS spirit: a packet moves as
/// soon as it is ready, independent of the rest of its message.
enum class CollectiveKind : std::uint8_t {
  kBroadcast,  ///< root's message to every node (multicast to all)
  kScatter,    ///< root sends a distinct m-packet message to every node
  kGather,     ///< every node sends a distinct m-packet message to root
  kReduce,     ///< in-network combining up the tree; result at root
  kAllReduce,  ///< reduce, then the result pipelined back down
};

[[nodiscard]] const char* to_string(CollectiveKind k);

/// What a collective does when a fabric fault leaves it incomplete.
/// Only consulted when `Config::network.faults` is non-empty; fault-free
/// incompleteness is an engine bug and always throws.
enum class RepairMode : std::uint8_t {
  /// Throw std::runtime_error the moment the initial attempt drains
  /// incomplete — the strict pre-fault contract for callers that would
  /// rather restart the whole job than reason about partial results.
  kFailFast,
  /// Re-plan around the dead hosts (mcast::RepairPolicy rounds) and
  /// report a queryable per-participant outcome instead of throwing.
  kDegradeAndContinue,
};

[[nodiscard]] const char* to_string(RepairMode m);

/// Outcome of one collective.
struct CollectiveResult {
  /// Operation start to the completion at the last host that must finish
  /// (all non-roots for scatter/broadcast, the root for gather/reduce,
  /// everyone for allreduce). Includes the host software overheads.
  /// Under faults: the latest completion that actually happened.
  sim::Time latency;
  /// Per-host completion times for hosts with a completion semantic.
  std::vector<std::pair<topo::HostId, sim::Time>> completions;
  std::int64_t packets_injected = 0;
  sim::Time total_channel_block_time;
  double peak_ni_buffer = 0.0;

  /// Fault verdict for the whole operation. Fault-free runs are always
  /// kComplete (anything else throws, preserving the strict contract).
  mcast::Outcome outcome = mcast::Outcome::kComplete;
  /// One entry per non-root participant, in tree (contention-free)
  /// order; empty for fault-free runs. `delivered` means the kind's
  /// per-host obligation was met: the host got its message (broadcast/
  /// scatter), its full message reached the root (gather), its
  /// contribution is folded into the root's result (reduce), it holds
  /// the final result (allreduce). `reachable` is the route table's
  /// end-of-run verdict for (effective root -> host).
  std::vector<mcast::DestinationStatus> participants;
  /// Reduce-correctness accounting (reduce/allreduce only): every host —
  /// root included — whose contribution is folded into the effective
  /// root's final result, in original tree order. A repair round only
  /// re-folds the *missing* contributors: subtrees whose every up-phase
  /// packet already folded at the root are salvaged, not re-run. Empty
  /// when the root never finished combining (kFailed) or for the other
  /// kinds.
  std::vector<topo::HostId> contributors;
  /// Tree-repair rounds this operation consumed.
  std::int32_t repairs = 0;
  /// 1 when the initiator died and a replacement finished the operation
  /// (mcast::RepairPolicy::root_handoff), else 0. Scatter never hands
  /// off: the personalized payloads die with the root.
  std::int32_t root_handoffs = 0;
  /// The initiator the final repair round ran under: the original root,
  /// or the elected replacement after a handoff.
  topo::HostId effective_root = topo::kInvalidId;
  /// Fault events the fabric applied during the run.
  std::int32_t faults_applied = 0;
  /// Route-table generation in force at the end of the run (0 = the
  /// pristine table, bumped per fault-time rebuild).
  std::int32_t route_epoch = 0;
  /// False when the *effective* root died — nothing could be
  /// re-initiated (no handoff candidate held the payload).
  bool root_alive = true;

  [[nodiscard]] std::int32_t delivered_count() const;
  /// delivered / participants; 1.0 for fault-free runs.
  [[nodiscard]] double delivery_ratio() const;
  /// Participants still reachable from the root at the end of the run,
  /// in tree order — exactly the route table's reachability verdict.
  [[nodiscard]] std::vector<topo::HostId> survivors() const;
};

/// Runs collectives on the full simulated system. Stateless between
/// calls: each run builds a fresh simulation over the shared
/// (topology, routes).
class CollectiveEngine {
 public:
  struct Config {
    netif::SystemParams params;
    net::NetworkConfig network;
    /// NI coprocessor occupancy to combine one received packet into the
    /// local partial result (reduce/allreduce). Modeled on the NI — the
    /// in-network-computing assumption; set high to model host-assisted
    /// combining.
    sim::Time t_comb = sim::Time::us(1.0);
    /// Retry-with-repair policy applied when `network.faults` is
    /// non-empty; shares the multicast engine's knobs (rounds, backoff,
    /// route rebuilds).
    mcast::RepairPolicy repair = {};
    /// Fail-fast vs degrade-and-continue under faults.
    RepairMode mode = RepairMode::kDegradeAndContinue;
  };

  CollectiveEngine(const topo::Topology& topology,
                   const routing::RouteTable& routes, Config config,
                   sim::Trace* trace = nullptr);

  /// `tree.root` initiates; `m` is the per-message packet count (for
  /// scatter/gather: per destination/source; for broadcast/reduce: of
  /// the single logical message).
  [[nodiscard]] CollectiveResult run(CollectiveKind kind,
                                     const core::HostTree& tree,
                                     std::int32_t m) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  const topo::Topology& topology_;
  const routing::RouteTable& routes_;
  Config config_;
  sim::Trace* trace_;
};

}  // namespace nimcast::collectives
