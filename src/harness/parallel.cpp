#include "harness/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <optional>
#include <string>

namespace nimcast::harness {

namespace {

/// Strict decimal parse for thread-count env vars: optional surrounding
/// whitespace around a plain base-10 integer, nothing else. Returns
/// nullopt for empty strings, trailing garbage ("4abc"), or overflow —
/// std::stoi/atoi would silently truncate the first two.
std::optional<long> parse_env_int(const char* s) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(s, &end, 10);
  if (end == s || errno == ERANGE) return std::nullopt;
  while (std::isspace(static_cast<unsigned char>(*end)) != 0) ++end;
  if (*end != '\0') return std::nullopt;
  return value;
}

}  // namespace

int configured_threads() {
  if (const char* env = std::getenv("NIMCAST_THREADS")) {
    if (const auto n = parse_env_int(env); n && *n >= 1) {
      return static_cast<int>(std::min<long>(*n, kMaxThreads));
    }
    // Malformed, zero or negative: behave as if unset.
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int configured_shards() {
  if (const char* env = std::getenv("NIMCAST_SHARDS")) {
    if (const auto n = parse_env_int(env); n && *n >= 1) {
      return static_cast<int>(std::min<long>(*n, kMaxThreads));
    }
  }
  return 0;  // auto
}

std::int64_t configured_window_ns() {
  if (const char* env = std::getenv("NIMCAST_WINDOW")) {
    if (const auto n = parse_env_int(env); n && *n >= 1) {
      return std::min<std::int64_t>(*n, kMaxWindowNs);
    }
    // Malformed, zero or negative: behave as if unset.
  }
  return 0;  // auto
}

int pick_shards(int threads, std::int32_t hosts, std::size_t replications) {
  if (const int forced = configured_shards(); forced > 0) return forced;
  if (replications >= static_cast<std::size_t>(threads)) return 1;
  const std::size_t per_rep = static_cast<std::size_t>(threads) /
                              std::max<std::size_t>(replications, 1);
  // Keep every shard at least kMinHostsPerShard hosts wide: thinner
  // shards spend more wall clock at window barriers than they win back.
  const auto by_hosts = static_cast<std::size_t>(
      std::max<std::int32_t>(hosts / kMinHostsPerShard, 1));
  return static_cast<int>(std::min(
      {std::max<std::size_t>(per_rep, 1), by_hosts,
       static_cast<std::size_t>(kMaxAutoShards)}));
}

SelectionOverride configured_selection() {
  const char* env = std::getenv("NIMCAST_SELECTION");
  if (env == nullptr) return SelectionOverride::kUnset;
  const char* begin = env;
  while (std::isspace(static_cast<unsigned char>(*begin)) != 0) ++begin;
  const char* end = begin;
  while (*end != '\0' && std::isspace(static_cast<unsigned char>(*end)) == 0) {
    ++end;
  }
  for (const char* tail = end; *tail != '\0'; ++tail) {
    if (std::isspace(static_cast<unsigned char>(*tail)) == 0) {
      return SelectionOverride::kUnset;  // two tokens: malformed
    }
  }
  const std::string word{begin, end};
  if (word == "static") return SelectionOverride::kStatic;
  if (word == "adaptive") return SelectionOverride::kAdaptive;
  return SelectionOverride::kUnset;
}

void log_parallel_plan(int threads, int shards, std::int64_t window_ns,
                       const char* selection, std::int32_t rotation_trees) {
  const char* env = std::getenv("NIMCAST_VERBOSE");
  if (env == nullptr || *env == '\0' ||
      (env[0] == '0' && env[1] == '\0')) {
    return;
  }
  static std::once_flag logged;
  std::call_once(logged, [&] {
    std::string line = "nimcast: threads=" + std::to_string(threads) +
                       " shards=" + std::to_string(shards) + " window=" +
                       (window_ns > 0 ? std::to_string(window_ns) + "ns"
                                      : std::string{"auto"});
    if (selection != nullptr) {
      line += " selection=";
      line += selection;
      line += " rotation=" + std::to_string(rotation_trees);
    }
    std::fprintf(stderr, "%s\n", line.c_str());
  });
}

/// Shared state of one for_each_index call: a job cursor, a completion
/// count, and the first exception. Heap-allocated and shared with the
/// queued closures so stale queue entries can never dangle.
struct WorkerPool::Batch {
  std::size_t count = 0;
  std::function<void(std::size_t)> job;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::condition_variable all_done;
  std::exception_ptr error;

  void run_some() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        job(i);
      } catch (...) {
        std::lock_guard lock{mutex};
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard lock{mutex};
        all_done.notify_all();
      }
    }
  }
};

WorkerPool::WorkerPool(int threads) {
  const int workers = threads - 1;  // the calling thread also works
  threads_.reserve(workers > 0 ? static_cast<std::size_t>(workers) : 0);
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back(
        [this](const std::stop_token& stop) { worker_loop(stop); });
  }
}

WorkerPool::~WorkerPool() {
  for (auto& t : threads_) t.request_stop();
  work_ready_.notify_all();
  // jthread joins on destruction.
}

void WorkerPool::worker_loop(const std::stop_token& stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mutex_};
      work_ready_.wait(lock, [&] {
        return stop.stop_requested() || !queue_.empty();
      });
      if (queue_.empty()) return;  // only on stop
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void WorkerPool::for_each_index(
    std::size_t count, const std::function<void(std::size_t)>& job) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    // Serial reference path: run in index order on the calling thread.
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->job = job;

  {
    std::lock_guard lock{mutex_};
    // One queue entry per worker: each entry drains the shared cursor.
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      queue_.emplace_back([batch] { batch->run_some(); });
    }
  }
  work_ready_.notify_all();

  batch->run_some();  // calling thread participates

  std::unique_lock lock{batch->mutex};
  batch->all_done.wait(lock, [&] {
    return batch->done.load(std::memory_order_acquire) == batch->count;
  });
  if (batch->error) std::rethrow_exception(batch->error);
}

void parallel_for_each(std::size_t count,
                       const std::function<void(std::size_t)>& job,
                       int threads) {
  const int n = threads >= 1 ? threads : configured_threads();
  if (n == 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }
  WorkerPool pool{n};
  pool.for_each_index(count, job);
}

}  // namespace nimcast::harness
