#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nimcast::harness {

/// Number of worker threads the harness should use: the NIMCAST_THREADS
/// environment variable when set, otherwise hardware concurrency.
/// NIMCAST_THREADS=1 selects the strictly serial path (no pool, no
/// threads), which is the reference for determinism checks.
///
/// NIMCAST_THREADS is parsed strictly: the value must be a plain decimal
/// integer (surrounding whitespace tolerated, nothing else — "4abc" and
/// "" are rejected, not truncated). Rejected, zero and negative values
/// fall back to hardware concurrency, exactly as if the variable were
/// unset. Values above kMaxThreads are clamped to it — a fat-fingered
/// "NIMCAST_THREADS=100000" must not try to spawn 100000 jthreads.
[[nodiscard]] int configured_threads();

/// Upper bound configured_threads() clamps to.
inline constexpr int kMaxThreads = 512;

/// Shards per simulation requested via NIMCAST_SHARDS (same strict
/// parsing as NIMCAST_THREADS). 0 means "unset / auto" — let
/// pick_shards() decide; 1 forces the serial engine; values above
/// kMaxThreads clamp to it.
[[nodiscard]] int configured_shards();

/// Conservative-window override (nanoseconds) requested via
/// NIMCAST_WINDOW, with the same strict parsing as NIMCAST_THREADS:
/// malformed, zero and negative values behave as if the variable were
/// unset. 0 means "auto" — the engine adapts the window to the
/// configuration; positive values are clamped to kMaxWindowNs and can
/// only narrow the engine's safe bound, never widen it.
[[nodiscard]] std::int64_t configured_window_ns();

inline constexpr std::int64_t kMaxWindowNs = 1'000'000'000;

/// Intra-run shard count for one testbed replication. NIMCAST_SHARDS
/// wins when set. The auto policy splits the `threads` worker budget:
/// replication parallelism first (embarrassingly parallel, so it always
/// takes priority — replications >= threads leaves nothing to shard);
/// the spare threads go into sharding, threads / replications each,
/// bounded so every shard keeps at least kMinHostsPerShard hosts
/// (thinner shards drown in window-barrier overhead) and by
/// kMaxAutoShards. Sharding never changes results (the sharded engine
/// is bit-identical to the serial one), so this policy is purely a
/// wall-clock decision.
[[nodiscard]] int pick_shards(int threads, std::int32_t hosts,
                              std::size_t replications);

inline constexpr std::int32_t kMinHostsPerShard = 64;
inline constexpr int kMaxAutoShards = 8;

/// Streaming member-selection policy requested via NIMCAST_SELECTION
/// ("static" or "adaptive", surrounding whitespace tolerated). kUnset
/// for anything else — the caller keeps its configured policy.
enum class SelectionOverride : std::uint8_t { kUnset, kStatic, kAdaptive };
[[nodiscard]] SelectionOverride configured_selection();

/// Under NIMCAST_VERBOSE (any non-empty value other than "0"), prints
/// the chosen (threads, shards, window) triple to stderr — once per
/// process, from whichever harness entry point runs first. Streaming
/// entry points pass the member-selection mode and rotation-set size;
/// the defaults omit the streaming fields from the line.
void log_parallel_plan(int threads, int shards, std::int64_t window_ns,
                       const char* selection = nullptr,
                       std::int32_t rotation_trees = 0);

/// A small fixed-size worker pool (std::jthread + work queue) for the
/// replication sweeps in the testbed. Replications are independent — each
/// builds its own Simulator — so the pool only hands out job indices; all
/// determinism lives in the per-replication seeding, which is identical to
/// the serial path.
///
/// Exceptions thrown by a job are captured and rethrown from
/// `for_each_index` on the calling thread (first one wins).
class WorkerPool {
 public:
  /// `threads` <= 1 means "run jobs inline on the calling thread".
  explicit WorkerPool(int threads = configured_threads());
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs `job(i)` for every i in [0, count). Blocks until all jobs
  /// finished. Jobs may run in any order and on any worker; callers must
  /// write results into per-index storage, not shared accumulators.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& job);

  [[nodiscard]] int thread_count() const {
    return static_cast<int>(threads_.size());
  }

 private:
  struct Batch;

  void worker_loop(const std::stop_token& stop);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::jthread> threads_;
};

/// Convenience wrapper: one-shot parallel loop with `threads` workers
/// (0 = configured_threads()). Serial when the effective count is 1.
void parallel_for_each(std::size_t count,
                       const std::function<void(std::size_t)>& job,
                       int threads = 0);

}  // namespace nimcast::harness
