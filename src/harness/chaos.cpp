#include "harness/chaos.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "collectives/collective_engine.hpp"
#include "core/host_tree.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/ordering.hpp"
#include "core/rotation.hpp"
#include "harness/testbed.hpp"
#include "mcast/multicast_engine.hpp"
#include "network/fault_plan.hpp"
#include "routing/route_table.hpp"
#include "routing/up_down.hpp"
#include "sim/rng.hpp"
#include "topology/fat_tree.hpp"
#include "topology/irregular.hpp"

namespace nimcast::harness {

namespace {

/// Order-sensitive digest fold (boost-style hash_combine over FNV prime):
/// two result streams fold to the same digest iff they are identical.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + UINT64_C(0x9e3779b97f4a7c15) + (h << 6) + (h >> 2);
  return h * UINT64_C(0x100000001b3);
}

std::uint64_t mix_time(std::uint64_t h, sim::Time t) {
  return mix(h, static_cast<std::uint64_t>(t.count_ns()));
}

/// The campaign's one operation, drawn from a uniform mix.
enum class ChaosOp : std::uint8_t {
  kMulticastSmart,
  kMulticastReliable,
  kStreaming,
  kCollBroadcast,
  kCollScatter,
  kCollGather,
  kCollReduce,
  kCollAllReduce,
};
constexpr std::uint64_t kOpCount = 8;

const char* to_string(ChaosOp op) {
  switch (op) {
    case ChaosOp::kMulticastSmart: return "multicast-smart";
    case ChaosOp::kMulticastReliable: return "multicast-reliable";
    case ChaosOp::kStreaming: return "streaming";
    case ChaosOp::kCollBroadcast: return "coll-broadcast";
    case ChaosOp::kCollScatter: return "coll-scatter";
    case ChaosOp::kCollGather: return "coll-gather";
    case ChaosOp::kCollReduce: return "coll-reduce";
    case ChaosOp::kCollAllReduce: return "coll-allreduce";
  }
  return "?";
}

/// Delivery-side invariants shared by every operation: reachable
/// participants must have delivered unless the payload died with the
/// root (`check_reachable` false skips that clause — streaming handoffs
/// legitimately lose the stream indices only the dead source held), and
/// the outcome verdict must agree with the delivery count.
void check_statuses(CampaignResult& out,
                    const std::vector<mcast::DestinationStatus>& statuses,
                    mcast::Outcome outcome, bool check_reachable) {
  std::int32_t delivered = 0;
  for (const auto& st : statuses) {
    if (st.delivered) ++delivered;
    if (!st.reachable) ++out.unreachable;
    if (check_reachable && outcome != mcast::Outcome::kFailed &&
        st.reachable && !st.delivered) {
      out.violations.push_back("reachable host " + std::to_string(st.host) +
                               " undelivered on a non-failed operation");
    }
  }
  out.delivered = delivered;
  if (statuses.empty()) return;  // fault-free: no per-host bookkeeping
  const auto n = static_cast<std::int32_t>(statuses.size());
  const bool consistent =
      (outcome == mcast::Outcome::kComplete && delivered == n) ||
      (outcome == mcast::Outcome::kFailed && delivered == 0) ||
      (outcome == mcast::Outcome::kPartial && delivered > 0 && delivered < n);
  if (!consistent) {
    out.violations.push_back("outcome " +
                             std::string(mcast::to_string(outcome)) +
                             " inconsistent with delivered=" +
                             std::to_string(delivered) + "/" +
                             std::to_string(n));
  }
}

/// Each host completes an operation at most once, repair rounds included.
void check_completions(
    CampaignResult& out,
    const std::vector<std::pair<topo::HostId, sim::Time>>& completions) {
  std::unordered_set<topo::HostId> seen;
  for (const auto& [h, t] : completions) {
    if (!seen.insert(h).second) {
      out.violations.push_back("duplicate completion at host " +
                               std::to_string(h));
    }
  }
}

std::uint64_t fold_statuses(std::uint64_t d,
                            const std::vector<mcast::DestinationStatus>& sts) {
  for (const auto& st : sts) {
    d = mix(d, static_cast<std::uint64_t>(st.host));
    d = mix(d, (st.delivered ? 2u : 0u) | (st.reachable ? 1u : 0u));
    d = mix_time(d, st.completed_at);
  }
  return d;
}

std::uint64_t fold_completions(
    std::uint64_t d,
    const std::vector<std::pair<topo::HostId, sim::Time>>& completions) {
  for (const auto& [h, t] : completions) {
    d = mix(d, static_cast<std::uint64_t>(h));
    d = mix_time(d, t);
  }
  return d;
}

}  // namespace

ChaosSoak::ChaosSoak(ChaosConfig config) : config_{config} {
  if (config_.campaigns < 1) {
    throw std::invalid_argument("ChaosSoak: campaigns < 1");
  }
  if (config_.num_hosts < 4 || config_.num_hosts % 4 != 0) {
    throw std::invalid_argument(
        "ChaosSoak: num_hosts must be a positive multiple of 4");
  }
}

CampaignResult ChaosSoak::campaign(const ChaosConfig& config,
                                   std::int32_t index, std::int32_t shards,
                                   std::int32_t shard_threads) {
  CampaignResult out;
  out.index = index;
  sim::Rng rng{config.seed ^ (UINT64_C(0x9e3779b97f4a7c15) *
                              (static_cast<std::uint64_t>(index) + 1))};

  // Fabric: campaigns alternate the random irregular family and the
  // deterministic fat tree, both at the configured host count.
  const bool fat = index % 2 == 1;
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<routing::UpDownRouter> router;
  if (fat) {
    const TestbedSpec spec = TestbedSpec::make_fat_tree(config.num_hosts);
    topology =
        std::make_unique<topo::Topology>(topo::make_fat_tree(spec.fat_tree));
    router = std::make_unique<routing::UpDownRouter>(
        topology->switches(), topo::fat_tree_levels(spec.fat_tree));
  } else {
    const TestbedSpec spec = TestbedSpec::make_irregular(config.num_hosts);
    topology = std::make_unique<topo::Topology>(
        topo::make_irregular(spec.irregular, rng));
    router = std::make_unique<routing::UpDownRouter>(topology->switches());
  }
  const routing::RouteTable routes{*topology, *router};
  const core::Chain cco = core::cco_ordering(*topology, *router);
  out.fabric = topology->name();

  // Participant draw: a random (source, destination-set) of n hosts.
  const std::int32_t n =
      std::clamp(config.participants, 2, topology->num_hosts());
  out.participants = n - 1;
  const auto draw = rng.sample_without_replacement(
      static_cast<std::size_t>(topology->num_hosts()),
      static_cast<std::size_t>(n));
  const auto source = static_cast<topo::HostId>(draw.front());
  std::vector<topo::HostId> dests;
  dests.reserve(draw.size() - 1);
  for (std::size_t i = 1; i < draw.size(); ++i) {
    dests.push_back(static_cast<topo::HostId>(draw[i]));
  }
  const core::Chain members = core::arrange_participants(cco, source, dests);
  const std::int32_t m = config.message_packets;
  const core::HostTree tree = core::HostTree::bind(
      core::make_kbinomial(n, core::optimal_k(n, m).k), members);

  const auto op = static_cast<ChaosOp>(rng.next_below(kOpCount));
  out.operation = to_string(op);

  // Fault schedule: background link/switch/host Bernoullis, an optional
  // link flap (failed links revive), and an optional targeted kill of
  // the operation's initiator mid-run.
  net::FaultPlan::RandomConfig fr;
  fr.link_fail_prob = config.link_fail_prob;
  fr.switch_fail_prob = config.switch_fail_prob;
  fr.host_fail_prob = config.host_fail_prob;
  fr.window_start = sim::Time::us(1.0);
  fr.window_end = sim::Time::us(150.0);
  const bool flap = rng.next_bool(config.link_flap_prob);
  if (flap) fr.link_recover_after = sim::Time::us(300.0);
  net::FaultPlan plan = net::FaultPlan::random(
      topology->switches(), topology->num_hosts(), fr, rng);
  out.root_killed = rng.next_bool(config.root_kill_prob);
  const sim::Time kill_at = sim::Time::us(
      static_cast<double>(rng.next_in(5, 80)));
  if (out.root_killed) plan.host_down(kill_at, source);

  std::uint64_t d = mix(0, static_cast<std::uint64_t>(op));
  try {
    switch (op) {
      case ChaosOp::kMulticastSmart:
      case ChaosOp::kMulticastReliable:
      case ChaosOp::kStreaming: {
        mcast::MulticastEngine::Config ecfg;
        ecfg.network.faults = plan;
        ecfg.style = op == ChaosOp::kMulticastReliable
                         ? mcast::NiStyle::kReliableFpfs
                         : mcast::NiStyle::kSmartFpfs;
        ecfg.shards = shards;
        ecfg.shard_threads = shard_threads;
        const mcast::MulticastEngine engine{*topology, routes, ecfg};
        if (op == ChaosOp::kStreaming) {
          core::RotationConfig rc;
          rc.rotation_trees = config.rotation_trees;
          rc.fanout_bound = std::clamp(core::optimal_k(n, 4).k, 1, n - 1);
          const core::RotationPlan rplan =
              core::plan_rotation(*topology, routes, *router, members, rc);
          const auto r = engine.run_streaming(rplan, config.stream_packets);
          out.outcome = mcast::to_string(r.outcome);
          out.repairs = r.repairs;
          out.replans = r.replans;
          out.root_handoffs = r.root_handoffs;
          // A per-packet handoff legitimately loses the indices only the
          // dead source held, so reachable destinations may hold partial
          // streams; with the source alive, reachable must mean full.
          check_statuses(out, r.destinations, r.outcome,
                         r.root_handoffs == 0);
          d = mix_time(d, r.makespan);
          d = mix_time(d, r.ni_makespan);
          d = mix(d, static_cast<std::uint64_t>(r.packets_delivered));
          d = mix(d, static_cast<std::uint64_t>(r.packets_resent));
          d = mix(d, static_cast<std::uint64_t>(r.effective_root));
          d = fold_statuses(d, r.destinations);
        } else {
          const auto r = engine.run(tree, m);
          out.outcome = mcast::to_string(r.outcome);
          out.repairs = r.repairs;
          out.root_handoffs = r.root_handoffs;
          check_statuses(out, r.destinations, r.outcome, true);
          check_completions(out, r.completions);
          d = mix_time(d, r.latency);
          d = mix(d, static_cast<std::uint64_t>(r.packets_delivered));
          d = mix(d, static_cast<std::uint64_t>(r.retransmissions));
          d = mix(d, static_cast<std::uint64_t>(r.effective_root));
          d = fold_statuses(d, r.destinations);
          d = fold_completions(d, r.completions);
        }
        break;
      }
      case ChaosOp::kCollBroadcast:
      case ChaosOp::kCollScatter:
      case ChaosOp::kCollGather:
      case ChaosOp::kCollReduce:
      case ChaosOp::kCollAllReduce: {
        const auto kind = [op] {
          switch (op) {
            case ChaosOp::kCollScatter:
              return collectives::CollectiveKind::kScatter;
            case ChaosOp::kCollGather:
              return collectives::CollectiveKind::kGather;
            case ChaosOp::kCollReduce:
              return collectives::CollectiveKind::kReduce;
            case ChaosOp::kCollAllReduce:
              return collectives::CollectiveKind::kAllReduce;
            default:
              return collectives::CollectiveKind::kBroadcast;
          }
        }();
        collectives::CollectiveEngine::Config ccfg;
        ccfg.network.faults = plan;
        const collectives::CollectiveEngine engine{*topology, routes, ccfg};
        const auto r = engine.run(kind, tree, m);
        out.outcome = mcast::to_string(r.outcome);
        out.repairs = r.repairs;
        out.root_handoffs = r.root_handoffs;
        out.faults_applied = r.faults_applied;
        check_statuses(out, r.participants, r.outcome, true);
        check_completions(out, r.completions);
        d = mix_time(d, r.latency);
        d = mix(d, static_cast<std::uint64_t>(r.packets_injected));
        d = mix(d, static_cast<std::uint64_t>(r.effective_root));
        d = mix(d, r.root_alive ? 1u : 0u);
        d = fold_statuses(d, r.participants);
        d = fold_completions(d, r.completions);
        for (topo::HostId h : r.contributors) {
          d = mix(d, static_cast<std::uint64_t>(h));
        }
        break;
      }
    }
  } catch (const std::exception& e) {
    out.violations.push_back("engine threw: " + std::string(e.what()));
    out.outcome = "threw";
  }
  d = mix(d, static_cast<std::uint64_t>(out.repairs));
  d = mix(d, static_cast<std::uint64_t>(out.replans));
  d = mix(d, static_cast<std::uint64_t>(out.root_handoffs));
  out.digest = d;
  return out;
}

ChaosReport ChaosSoak::run() const {
  ChaosReport report;
  report.campaigns = config_.campaigns;
  std::uint64_t soak_digest = 0;
  for (std::int32_t c = 0; c < config_.campaigns; ++c) {
    CampaignResult r =
        campaign(config_, c, config_.shards, config_.shard_threads);

    // Byte-determinism: the same campaign rerun must fold to the same
    // digest; every shard_check_every-th campaign is also cross-checked
    // against a 2-shard engine.
    const CampaignResult rerun =
        campaign(config_, c, config_.shards, config_.shard_threads);
    if (rerun.digest != r.digest) {
      r.violations.push_back("rerun digest mismatch (campaign " +
                             std::to_string(c) + ")");
    }
    if (config_.shard_check_every > 0 && c % config_.shard_check_every == 0) {
      const CampaignResult sharded = campaign(config_, c, 2, 0);
      if (sharded.digest != r.digest) {
        r.violations.push_back("sharded digest mismatch (campaign " +
                               std::to_string(c) + ")");
      }
    }

    if (r.outcome == "complete") ++report.complete;
    if (r.outcome == "partial") ++report.partial;
    if (r.outcome == "failed") ++report.failed;
    if (r.root_killed) ++report.root_kills;
    report.root_handoffs += r.root_handoffs;
    report.repairs += r.repairs;
    report.replans += r.replans;
    report.violations += static_cast<std::int32_t>(r.violations.size());
    for (const auto& v : r.violations) {
      if (report.violation_messages.size() < 16) {
        report.violation_messages.push_back("campaign " + std::to_string(c) +
                                            " (" + r.operation + " on " +
                                            r.fabric + "): " + v);
      }
    }
    soak_digest = mix(soak_digest, r.digest);
    report.results.push_back(std::move(r));
  }
  report.digest = soak_digest;
  return report;
}

}  // namespace nimcast::harness
