#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace nimcast::harness {

/// Fixed-width text table, the format every bench binary prints its
/// figure/table data in. Cells are strings; numeric helpers format with
/// sensible precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Formats a double with `digits` decimals.
  [[nodiscard]] static std::string num(double v, int digits = 1);
  [[nodiscard]] static std::string num(std::int64_t v);

  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (no quoting needed for our cell contents;
  /// commas in cells are rejected).
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nimcast::harness
