#pragma once

#include <cstdint>
#include <string>

#include "core/coverage.hpp"
#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "core/tree.hpp"

namespace nimcast::harness {

/// Declarative multicast-tree choice, resolved per (n, m) point. The
/// optimal spec re-solves Theorem 3 at every point, which is how the
/// paper's "k-bin" curves are produced.
struct TreeSpec {
  enum class Kind : std::uint8_t {
    kBinomial,   ///< k = ceil(log2 n) — the conventional baseline
    kLinear,     ///< k = 1 — the chain
    kKBinomial,  ///< fixed k
    kOptimal,    ///< k from Theorem 3 for this (n, m)
  };

  Kind kind = Kind::kOptimal;
  std::int32_t fixed_k = 1;  ///< used when kind == kKBinomial

  [[nodiscard]] static TreeSpec binomial() { return {Kind::kBinomial, 0}; }
  [[nodiscard]] static TreeSpec linear() { return {Kind::kLinear, 0}; }
  [[nodiscard]] static TreeSpec kbinomial(std::int32_t k) {
    return {Kind::kKBinomial, k};
  }
  [[nodiscard]] static TreeSpec optimal() { return {Kind::kOptimal, 0}; }

  /// Builds the rank tree for a multicast set of size `n` (source
  /// included) carrying `m` packets.
  [[nodiscard]] core::RankTree build(std::int32_t n, std::int32_t m) const;

  /// The k this spec resolves to at (n, m).
  [[nodiscard]] std::int32_t resolve_k(std::int32_t n, std::int32_t m) const;

  [[nodiscard]] std::string name() const;
};

}  // namespace nimcast::harness
