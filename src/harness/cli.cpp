#include "harness/cli.hpp"

#include <sstream>
#include <stdexcept>

namespace nimcast::harness {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "nimcast";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("Cli: positional argument '" + arg +
                                  "' not supported");
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not an option; bare flag
    // otherwise.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

Cli& Cli::describe(const std::string& name, const std::string& help) {
  docs_.emplace_back(name, help);
  return *this;
}

const std::string* Cli::raw(const std::string& name) {
  consumed_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? nullptr : &it->second;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) {
  const std::string* v = raw(name);
  return v == nullptr ? fallback : *v;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) {
  const std::string* v = raw(name);
  if (v == nullptr) return fallback;
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(*v, &pos);
  if (pos != v->size()) {
    throw std::invalid_argument("Cli: --" + name + " expects an integer");
  }
  return out;
}

double Cli::get_double(const std::string& name, double fallback) {
  const std::string* v = raw(name);
  if (v == nullptr) return fallback;
  std::size_t pos = 0;
  const double out = std::stod(*v, &pos);
  if (pos != v->size()) {
    throw std::invalid_argument("Cli: --" + name + " expects a number");
  }
  return out;
}

bool Cli::get_flag(const std::string& name) {
  const std::string* v = raw(name);
  if (v == nullptr) return false;
  if (v->empty() || *v == "true" || *v == "1") return true;
  if (*v == "false" || *v == "0") return false;
  throw std::invalid_argument("Cli: --" + name + " is a flag");
}

bool Cli::finish() const {
  std::string leftovers;
  for (const auto& [name, value] : values_) {
    if (!consumed_.contains(name)) {
      leftovers += " --" + name;
    }
  }
  if (!leftovers.empty()) {
    throw std::invalid_argument("Cli: unknown option(s):" + leftovers);
  }
  return !help_;
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [options]\n";
  for (const auto& [name, help] : docs_) {
    os << "  --" << name;
    for (std::size_t pad = name.size(); pad < 18; ++pad) os << ' ';
    os << help << '\n';
  }
  return os.str();
}

}  // namespace nimcast::harness
