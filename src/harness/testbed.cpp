#include "harness/testbed.hpp"

#include <stdexcept>

#include "core/host_tree.hpp"
#include "harness/parallel.hpp"
#include "sim/rng.hpp"

namespace nimcast::harness {

void MeasurePoint::merge(const MeasurePoint& other) {
  latency_us.merge(other.latency_us);
  block_us.merge(other.block_us);
  peak_buffer.merge(other.peak_buffer);
  buffer_integral.merge(other.buffer_integral);
}

namespace {

/// The four scalars one replication contributes to a MeasurePoint.
struct RepSample {
  double latency_us = 0.0;
  double block_us = 0.0;
  double peak_buffer = 0.0;
  double buffer_integral = 0.0;
};

void validate_point(std::int32_t num_hosts, std::int32_t n, std::int32_t m,
                    std::int32_t repetitions) {
  if (n < 2 || n > num_hosts) {
    throw std::invalid_argument("measure_point: n out of [2, hosts]");
  }
  if (m < 1) throw std::invalid_argument("measure_point: m < 1");
  if (repetitions < 1) {
    throw std::invalid_argument("measure_point: repetitions < 1");
  }
}

/// One (destination-set) replication: deterministic given (`seed`, `rep`)
/// alone, so it can run on any worker thread. The engine is shared (its
/// `run` builds a private Simulator per call); everything mutable is
/// local.
RepSample run_replication(const mcast::MulticastEngine& engine,
                          const core::Chain& base_chain,
                          std::int32_t num_hosts, std::int32_t n,
                          const core::RankTree& rank_tree, std::int32_t m,
                          OrderingKind ordering, std::int32_t rep,
                          std::uint64_t seed) {
  // One deterministic stream per repetition: every tree and NI variant
  // sees identical participant draws.
  sim::Rng rng{seed ^ (UINT64_C(0xbf58476d1ce4e5b9) *
                       (static_cast<std::uint64_t>(rep) + 1))};
  const auto draw = rng.sample_without_replacement(
      static_cast<std::size_t>(num_hosts), static_cast<std::size_t>(n));
  const auto source = static_cast<topo::HostId>(draw.front());
  std::vector<topo::HostId> dests;
  dests.reserve(draw.size() - 1);
  for (std::size_t i = 1; i < draw.size(); ++i) {
    dests.push_back(static_cast<topo::HostId>(draw[i]));
  }

  const core::Chain base = ordering == OrderingKind::kCco
                               ? base_chain
                               : core::random_ordering(num_hosts, rng);
  const core::Chain members = core::arrange_participants(base, source, dests);
  const core::HostTree tree = core::HostTree::bind(rank_tree, members);

  const mcast::MulticastResult result = engine.run(tree, m);
  return RepSample{result.latency.as_us(),
                   result.total_channel_block_time.as_us(),
                   result.peak_buffer(), result.max_buffer_integral()};
}

void fold(MeasurePoint& point, const RepSample& s) {
  point.latency_us.add(s.latency_us);
  point.block_us.add(s.block_us);
  point.peak_buffer.add(s.peak_buffer);
  point.buffer_integral.add(s.buffer_integral);
}

}  // namespace

MeasurePoint measure_point(const topo::Topology& topology,
                           const routing::RouteTable& routes,
                           const core::Chain& base_chain,
                           const netif::SystemParams& params,
                           const net::NetworkConfig& network, std::int32_t n,
                           std::int32_t m, const TreeSpec& spec,
                           mcast::NiStyle style, OrderingKind ordering,
                           std::int32_t repetitions, std::uint64_t seed,
                           int threads) {
  const std::int32_t num_hosts = topology.num_hosts();
  validate_point(num_hosts, n, m, repetitions);

  const core::RankTree rank_tree = spec.build(n, m);
  const mcast::MulticastEngine engine{
      topology, routes,
      mcast::MulticastEngine::Config{params, network, style}};

  std::vector<RepSample> samples(static_cast<std::size_t>(repetitions));
  parallel_for_each(
      samples.size(),
      [&](std::size_t rep) {
        samples[rep] =
            run_replication(engine, base_chain, num_hosts, n, rank_tree, m,
                            ordering, static_cast<std::int32_t>(rep), seed);
      },
      threads);

  // Fold in repetition order: bit-identical to the serial loop.
  MeasurePoint point;
  for (const RepSample& s : samples) fold(point, s);
  return point;
}

IrregularTestbed::IrregularTestbed(Config config) : cfg_{std::move(config)} {
  if (cfg_.num_topologies < 1 || cfg_.sets_per_topology < 1) {
    throw std::invalid_argument("IrregularTestbed: non-positive repetitions");
  }
  sim::Rng topo_rng{cfg_.seed};
  instances_.reserve(static_cast<std::size_t>(cfg_.num_topologies));
  for (std::int32_t t = 0; t < cfg_.num_topologies; ++t) {
    Instance inst;
    inst.topology = std::make_unique<topo::Topology>(
        topo::make_irregular(cfg_.topology, topo_rng));
    inst.router =
        std::make_unique<routing::UpDownRouter>(inst.topology->switches());
    inst.routes =
        std::make_unique<routing::RouteTable>(*inst.topology, *inst.router);
    inst.cco = core::cco_ordering(*inst.topology, *inst.router);
    instances_.push_back(std::move(inst));
  }
}

IrregularTestbed::Point IrregularTestbed::measure(std::int32_t n,
                                                  std::int32_t m,
                                                  const TreeSpec& spec,
                                                  mcast::NiStyle style,
                                                  OrderingKind ordering,
                                                  int threads) const {
  const std::int32_t hosts = num_hosts();
  validate_point(hosts, n, m, cfg_.sets_per_topology);

  const core::RankTree rank_tree = spec.build(n, m);
  std::vector<mcast::MulticastEngine> engines;
  engines.reserve(instances_.size());
  for (const Instance& inst : instances_) {
    engines.emplace_back(
        *inst.topology, *inst.routes,
        mcast::MulticastEngine::Config{cfg_.params, cfg_.network, style});
  }

  // Every (topology, destination-set) pair is one independent job; the
  // sample array keeps them in (topology-major, set-minor) order so the
  // summary fold below matches the serial nesting exactly.
  const auto sets = static_cast<std::size_t>(cfg_.sets_per_topology);
  std::vector<RepSample> samples(instances_.size() * sets);
  parallel_for_each(
      samples.size(),
      [&](std::size_t job) {
        const std::size_t t = job / sets;
        const std::size_t rep = job % sets;
        const std::uint64_t seed =
            cfg_.seed ^ (UINT64_C(0x9e3779b97f4a7c15) * (t + 1));
        samples[job] = run_replication(engines[t], instances_[t].cco, hosts,
                                       n, rank_tree, m, ordering,
                                       static_cast<std::int32_t>(rep), seed);
      },
      threads);

  Point point;
  for (std::size_t t = 0; t < instances_.size(); ++t) {
    MeasurePoint inst_point;
    for (std::size_t rep = 0; rep < sets; ++rep) {
      fold(inst_point, samples[t * sets + rep]);
    }
    point.merge(inst_point);
  }
  return point;
}

}  // namespace nimcast::harness
