#include "harness/testbed.hpp"

#include <stdexcept>

#include "core/host_tree.hpp"
#include "sim/rng.hpp"

namespace nimcast::harness {

void MeasurePoint::merge(const MeasurePoint& other) {
  latency_us.merge(other.latency_us);
  block_us.merge(other.block_us);
  peak_buffer.merge(other.peak_buffer);
  buffer_integral.merge(other.buffer_integral);
}

MeasurePoint measure_point(const topo::Topology& topology,
                           const routing::RouteTable& routes,
                           const core::Chain& base_chain,
                           const netif::SystemParams& params,
                           const net::NetworkConfig& network, std::int32_t n,
                           std::int32_t m, const TreeSpec& spec,
                           mcast::NiStyle style, OrderingKind ordering,
                           std::int32_t repetitions, std::uint64_t seed) {
  const std::int32_t num_hosts = topology.num_hosts();
  if (n < 2 || n > num_hosts) {
    throw std::invalid_argument("measure_point: n out of [2, hosts]");
  }
  if (m < 1) throw std::invalid_argument("measure_point: m < 1");
  if (repetitions < 1) {
    throw std::invalid_argument("measure_point: repetitions < 1");
  }

  const core::RankTree rank_tree = spec.build(n, m);
  mcast::MulticastEngine engine{
      topology, routes,
      mcast::MulticastEngine::Config{params, network, style}};

  MeasurePoint point;
  for (std::int32_t rep = 0; rep < repetitions; ++rep) {
    // One deterministic stream per repetition: every tree and NI variant
    // sees identical participant draws.
    sim::Rng rng{seed ^
                 (UINT64_C(0xbf58476d1ce4e5b9) *
                  (static_cast<std::uint64_t>(rep) + 1))};
    const auto draw = rng.sample_without_replacement(
        static_cast<std::size_t>(num_hosts), static_cast<std::size_t>(n));
    const auto source = static_cast<topo::HostId>(draw.front());
    std::vector<topo::HostId> dests;
    dests.reserve(draw.size() - 1);
    for (std::size_t i = 1; i < draw.size(); ++i) {
      dests.push_back(static_cast<topo::HostId>(draw[i]));
    }

    const core::Chain base = ordering == OrderingKind::kCco
                                 ? base_chain
                                 : core::random_ordering(num_hosts, rng);
    const core::Chain members =
        core::arrange_participants(base, source, dests);
    const core::HostTree tree = core::HostTree::bind(rank_tree, members);

    const mcast::MulticastResult result = engine.run(tree, m);
    point.latency_us.add(result.latency.as_us());
    point.block_us.add(result.total_channel_block_time.as_us());
    point.peak_buffer.add(result.peak_buffer());
    point.buffer_integral.add(result.max_buffer_integral());
  }
  return point;
}

IrregularTestbed::IrregularTestbed(Config config) : cfg_{std::move(config)} {
  if (cfg_.num_topologies < 1 || cfg_.sets_per_topology < 1) {
    throw std::invalid_argument("IrregularTestbed: non-positive repetitions");
  }
  sim::Rng topo_rng{cfg_.seed};
  instances_.reserve(static_cast<std::size_t>(cfg_.num_topologies));
  for (std::int32_t t = 0; t < cfg_.num_topologies; ++t) {
    Instance inst;
    inst.topology = std::make_unique<topo::Topology>(
        topo::make_irregular(cfg_.topology, topo_rng));
    inst.router =
        std::make_unique<routing::UpDownRouter>(inst.topology->switches());
    inst.routes =
        std::make_unique<routing::RouteTable>(*inst.topology, *inst.router);
    inst.cco = core::cco_ordering(*inst.topology, *inst.router);
    instances_.push_back(std::move(inst));
  }
}

IrregularTestbed::Point IrregularTestbed::measure(std::int32_t n,
                                                  std::int32_t m,
                                                  const TreeSpec& spec,
                                                  mcast::NiStyle style,
                                                  OrderingKind ordering) const {
  Point point;
  for (std::size_t t = 0; t < instances_.size(); ++t) {
    const Instance& inst = instances_[t];
    const std::uint64_t seed =
        cfg_.seed ^ (UINT64_C(0x9e3779b97f4a7c15) * (t + 1));
    point.merge(measure_point(*inst.topology, *inst.routes, inst.cco,
                              cfg_.params, cfg_.network, n, m, spec, style,
                              ordering, cfg_.sets_per_topology, seed));
  }
  return point;
}

}  // namespace nimcast::harness
