#include "harness/testbed.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/host_tree.hpp"
#include "core/rotation.hpp"
#include "harness/parallel.hpp"
#include "sim/rng.hpp"
#include "traffic/traffic_engine.hpp"

namespace nimcast::harness {

void MeasurePoint::merge(const MeasurePoint& other) {
  latency_us.merge(other.latency_us);
  block_us.merge(other.block_us);
  peak_buffer.merge(other.peak_buffer);
  buffer_integral.merge(other.buffer_integral);
  events.merge(other.events);
}

void TrafficPoint::merge(const TrafficPoint& other) {
  ops_per_sec.merge(other.ops_per_sec);
  flits_per_us.merge(other.flits_per_us);
  makespan_us.merge(other.makespan_us);
  deferral_ticks.merge(other.deferral_ticks);
  for (double v : other.fct_us.values()) fct_us.add(v);
  for (double v : other.fct_multicast_us.values()) fct_multicast_us.add(v);
  for (double v : other.fct_stream_us.values()) fct_stream_us.add(v);
  for (double v : other.fct_collective_us.values()) fct_collective_us.add(v);
  for (std::int32_t b = 0; b < 64; b += 8) {
    digest ^= (other.digest >> b) & 0xffu;
    digest *= 1099511628211ull;  // FNV-1a prime
  }
}

void StreamingPoint::merge(const StreamingPoint& other) {
  flits_per_us.merge(other.flits_per_us);
  makespan_us.merge(other.makespan_us);
  p99_gap_us.merge(other.p99_gap_us);
  overlap_mean.merge(other.overlap_mean);
  rotation_used.merge(other.rotation_used);
  member_imbalance.merge(other.member_imbalance);
  telemetry_snapshots.merge(other.telemetry_snapshots);
}

namespace {

/// The scalars one replication contributes to a MeasurePoint.
struct RepSample {
  double latency_us = 0.0;
  double block_us = 0.0;
  double peak_buffer = 0.0;
  double buffer_integral = 0.0;
  double events = 0.0;
};

void validate_point(std::int32_t num_hosts, std::int32_t n, std::int32_t m,
                    std::int32_t repetitions) {
  if (n < 2 || n > num_hosts) {
    throw std::invalid_argument("measure_point: n out of [2, hosts]");
  }
  if (m < 1) throw std::invalid_argument("measure_point: m < 1");
  if (repetitions < 1) {
    throw std::invalid_argument("measure_point: repetitions < 1");
  }
}

/// One (destination-set) replication: deterministic given (`seed`, `rep`)
/// alone, so it can run on any worker thread. The engine is shared (its
/// `run` builds a private Simulator per call); everything mutable is
/// local.
RepSample run_replication(const mcast::MulticastEngine& engine,
                          const core::Chain& base_chain,
                          std::int32_t num_hosts, std::int32_t n,
                          const core::RankTree& rank_tree, std::int32_t m,
                          OrderingKind ordering, std::int32_t rep,
                          std::uint64_t seed) {
  // One deterministic stream per repetition: every tree and NI variant
  // sees identical participant draws.
  sim::Rng rng{seed ^ (UINT64_C(0xbf58476d1ce4e5b9) *
                       (static_cast<std::uint64_t>(rep) + 1))};
  const auto draw = rng.sample_without_replacement(
      static_cast<std::size_t>(num_hosts), static_cast<std::size_t>(n));
  const auto source = static_cast<topo::HostId>(draw.front());
  std::vector<topo::HostId> dests;
  dests.reserve(draw.size() - 1);
  for (std::size_t i = 1; i < draw.size(); ++i) {
    dests.push_back(static_cast<topo::HostId>(draw[i]));
  }

  const core::Chain base = ordering == OrderingKind::kCco
                               ? base_chain
                               : core::random_ordering(num_hosts, rng);
  const core::Chain members = core::arrange_participants(base, source, dests);
  const core::HostTree tree = core::HostTree::bind(rank_tree, members);

  const mcast::MulticastResult result = engine.run(tree, m);
  return RepSample{result.latency.as_us(),
                   result.total_channel_block_time.as_us(),
                   result.peak_buffer(), result.max_buffer_integral(),
                   static_cast<double>(result.events_dispatched)};
}

void fold(MeasurePoint& point, const RepSample& s) {
  point.latency_us.add(s.latency_us);
  point.block_us.add(s.block_us);
  point.peak_buffer.add(s.peak_buffer);
  point.buffer_integral.add(s.buffer_integral);
  point.events.add(s.events);
}

}  // namespace

MeasurePoint measure_point(const topo::Topology& topology,
                           const routing::RouteTable& routes,
                           const core::Chain& base_chain,
                           const netif::SystemParams& params,
                           const net::NetworkConfig& network, std::int32_t n,
                           std::int32_t m, const TreeSpec& spec,
                           mcast::NiStyle style, OrderingKind ordering,
                           std::int32_t repetitions, std::uint64_t seed,
                           int threads) {
  const std::int32_t num_hosts = topology.num_hosts();
  validate_point(num_hosts, n, m, repetitions);

  const core::RankTree rank_tree = spec.build(n, m);
  // Thread budget split: replication parallelism first (embarrassingly
  // parallel); on big fabrics with too few replications to fill it, the
  // spare threads go into intra-run sharding instead — and since the
  // sharded engine is bit-identical to the serial one, the split never
  // changes the measured numbers.
  const int budget = threads >= 1 ? threads : configured_threads();
  const int shards =
      pick_shards(budget, num_hosts, static_cast<std::size_t>(repetitions));
  const std::int64_t window_ns = configured_window_ns();
  log_parallel_plan(budget, shards, window_ns);
  mcast::MulticastEngine::Config ecfg{params, network, style};
  ecfg.shards = shards;
  ecfg.window = sim::Time::ns(window_ns);
  const mcast::MulticastEngine engine{topology, routes, ecfg};

  std::vector<RepSample> samples(static_cast<std::size_t>(repetitions));
  parallel_for_each(
      samples.size(),
      [&](std::size_t rep) {
        samples[rep] =
            run_replication(engine, base_chain, num_hosts, n, rank_tree, m,
                            ordering, static_cast<std::int32_t>(rep), seed);
      },
      std::max(1, budget / shards));

  // Fold in repetition order: bit-identical to the serial loop.
  MeasurePoint point;
  for (const RepSample& s : samples) fold(point, s);
  return point;
}

TestbedSpec TestbedSpec::make_irregular(std::int32_t hosts) {
  if (hosts < 4 || hosts % 4 != 0) {
    throw std::invalid_argument(
        "TestbedSpec::make_irregular: hosts must be a positive multiple of 4");
  }
  TestbedSpec spec;
  spec.fabric = FabricKind::kIrregular;
  spec.num_hosts = hosts;
  spec.irregular.num_hosts = hosts;
  // Paper port budget: 8-port switches, 4 hosts + up to 4 switch links
  // each — hosts=64 reproduces the 16-switch rig exactly.
  spec.irregular.num_switches = hosts / 4;
  return spec;
}

TestbedSpec TestbedSpec::make_fat_tree(std::int32_t hosts) {
  if (hosts < 4) {
    throw std::invalid_argument("TestbedSpec::make_fat_tree: hosts < 4");
  }
  auto edge = static_cast<std::int32_t>(std::sqrt(static_cast<double>(hosts)));
  while (hosts % edge != 0) --edge;  // terminates: edge=1 divides anything
  TestbedSpec spec;
  spec.fabric = FabricKind::kFatTree;
  spec.num_hosts = hosts;
  spec.fat_tree.edge_switches = edge;
  spec.fat_tree.hosts_per_edge = hosts / edge;
  spec.fat_tree.spine_switches = edge / 2 > 2 ? edge / 2 : 2;
  spec.num_topologies = 1;  // deterministic fabric
  return spec;
}

Testbed::Testbed(TestbedSpec spec) : spec_{std::move(spec)} {
  if (spec_.num_topologies < 1 || spec_.sets_per_topology < 1) {
    throw std::invalid_argument("Testbed: non-positive repetitions");
  }
  const auto start = std::chrono::steady_clock::now();
  instances_.reserve(static_cast<std::size_t>(spec_.num_topologies));
  if (spec_.fabric == FabricKind::kIrregular) {
    topo::IrregularConfig cfg = spec_.irregular;
    cfg.num_hosts = spec_.num_hosts;
    // Single generator across topologies: instance t depends on the
    // draws of 0..t-1, matching the original IrregularTestbed stream.
    sim::Rng topo_rng{spec_.seed};
    for (std::int32_t t = 0; t < spec_.num_topologies; ++t) {
      Instance inst;
      inst.topology = std::make_unique<topo::Topology>(
          topo::make_irregular(cfg, topo_rng));
      inst.router = std::make_shared<const routing::UpDownRouter>(
          inst.topology->switches());
      inst.routes = std::make_unique<routing::RouteTable>(*inst.topology,
                                                          inst.router);
      inst.cco = core::cco_ordering(*inst.topology, *inst.router);
      instances_.push_back(std::move(inst));
    }
  } else {
    const topo::FatTreeConfig& cfg = spec_.fat_tree;
    const std::int64_t fabric_hosts =
        static_cast<std::int64_t>(cfg.edge_switches) * cfg.hosts_per_edge;
    if (fabric_hosts != spec_.num_hosts) {
      throw std::invalid_argument(
          "Testbed: fat_tree config disagrees with num_hosts");
    }
    for (std::int32_t t = 0; t < spec_.num_topologies; ++t) {
      Instance inst;
      inst.topology =
          std::make_unique<topo::Topology>(topo::make_fat_tree(cfg));
      inst.router = std::make_shared<const routing::UpDownRouter>(
          inst.topology->switches(), topo::fat_tree_levels(cfg));
      inst.routes = std::make_unique<routing::RouteTable>(*inst.topology,
                                                          inst.router);
      inst.cco = core::cco_ordering(*inst.topology, *inst.router);
      instances_.push_back(std::move(inst));
    }
  }
  build_ms_ = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
}

std::size_t Testbed::route_memory_bytes() const {
  std::size_t total = 0;
  for (const Instance& inst : instances_) {
    total += inst.routes->memory_bytes();
  }
  return total;
}

Testbed::Point Testbed::measure(std::int32_t n, std::int32_t m,
                                const TreeSpec& spec, mcast::NiStyle style,
                                OrderingKind ordering, int threads) const {
  const std::int32_t hosts = spec_.num_hosts;
  validate_point(hosts, n, m, spec_.sets_per_topology);

  const core::RankTree rank_tree = spec.build(n, m);
  // Same budget split as measure_point: replications fill the worker
  // budget first; on big fabrics with too few replications the spare
  // threads shard each simulation instead (identical results either
  // way).
  const auto sets = static_cast<std::size_t>(spec_.sets_per_topology);
  const std::size_t replications = instances_.size() * sets;
  const int budget = threads >= 1 ? threads : configured_threads();
  const int shards = pick_shards(budget, hosts, replications);
  const std::int64_t window_ns = configured_window_ns();
  log_parallel_plan(budget, shards, window_ns);
  std::vector<mcast::MulticastEngine> engines;
  engines.reserve(instances_.size());
  for (const Instance& inst : instances_) {
    mcast::MulticastEngine::Config ecfg{spec_.params, spec_.network, style};
    ecfg.shards = shards;
    ecfg.window = sim::Time::ns(window_ns);
    engines.emplace_back(*inst.topology, *inst.routes, ecfg);
  }

  // Every (topology, destination-set) pair is one independent job; the
  // sample array keeps them in (topology-major, set-minor) order so the
  // summary fold below matches the serial nesting exactly.
  std::vector<RepSample> samples(replications);
  parallel_for_each(
      samples.size(),
      [&](std::size_t job) {
        const std::size_t t = job / sets;
        const std::size_t rep = job % sets;
        const std::uint64_t seed =
            spec_.seed ^ (UINT64_C(0x9e3779b97f4a7c15) * (t + 1));
        samples[job] = run_replication(engines[t], instances_[t].cco, hosts,
                                       n, rank_tree, m, ordering,
                                       static_cast<std::int32_t>(rep), seed);
      },
      std::max(1, budget / shards));

  Point point;
  for (std::size_t t = 0; t < instances_.size(); ++t) {
    MeasurePoint inst_point;
    for (std::size_t rep = 0; rep < sets; ++rep) {
      fold(inst_point, samples[t * sets + rep]);
    }
    point.merge(inst_point);
  }
  return point;
}

StreamingPoint Testbed::measure_streaming(
    std::int32_t stream_packets, std::int32_t rotation_trees,
    std::int32_t fanout_bound, int threads,
    mcast::Selection selection) const {
  const std::int32_t hosts = spec_.num_hosts;
  if (hosts < 2) {
    throw std::invalid_argument("measure_streaming: fewer than 2 hosts");
  }
  if (stream_packets < 1) {
    throw std::invalid_argument("measure_streaming: stream_packets < 1");
  }
  if (rotation_trees < 1) {
    throw std::invalid_argument("measure_streaming: rotation_trees < 1");
  }

  struct StreamSample {
    double flits_per_us = 0.0;
    double makespan_us = 0.0;
    double p99_gap_us = 0.0;
    double overlap_mean = 0.0;
    double rotation_used = 0.0;
    double member_imbalance = 1.0;
    double telemetry_snapshots = 0.0;
  };

  switch (configured_selection()) {
    case SelectionOverride::kStatic:
      selection = mcast::Selection::kStatic;
      break;
    case SelectionOverride::kAdaptive:
      selection = mcast::Selection::kAdaptive;
      break;
    case SelectionOverride::kUnset:
      break;
  }
  const auto sets = static_cast<std::size_t>(spec_.sets_per_topology);
  const std::size_t replications = instances_.size() * sets;
  const int budget = threads >= 1 ? threads : configured_threads();
  const int shards = pick_shards(budget, hosts, replications);
  const std::int64_t window_ns = configured_window_ns();
  log_parallel_plan(budget, shards, window_ns,
                    mcast::to_string(selection), rotation_trees);
  std::vector<mcast::MulticastEngine> engines;
  engines.reserve(instances_.size());
  for (const Instance& inst : instances_) {
    mcast::MulticastEngine::Config ecfg{spec_.params, spec_.network,
                                        mcast::NiStyle::kSmartFpfs};
    ecfg.shards = shards;
    ecfg.window = sim::Time::ns(window_ns);
    ecfg.rotation_trees = rotation_trees;
    ecfg.selection = selection;
    engines.emplace_back(*inst.topology, *inst.routes, ecfg);
  }

  std::vector<StreamSample> samples(replications);
  parallel_for_each(
      samples.size(),
      [&](std::size_t job) {
        const std::size_t t = job / sets;
        const std::size_t rep = job % sets;
        const Instance& inst = instances_[t];
        const std::uint64_t seed =
            spec_.seed ^ (UINT64_C(0x9e3779b97f4a7c15) * (t + 1));
        // Same per-replication stream as run_replication, so streaming
        // sweeps draw paired sources across (S, R) configurations.
        sim::Rng rng{seed ^ (UINT64_C(0xbf58476d1ce4e5b9) *
                             (static_cast<std::uint64_t>(rep) + 1))};
        const auto draw = rng.sample_without_replacement(
            static_cast<std::size_t>(hosts), 1);
        const auto source = static_cast<topo::HostId>(draw.front());
        std::vector<topo::HostId> dests;
        dests.reserve(static_cast<std::size_t>(hosts) - 1);
        for (topo::HostId h = 0; h < hosts; ++h) {
          if (h != source) dests.push_back(h);
        }
        const core::Chain members =
            core::arrange_participants(inst.cco, source, dests);
        core::RotationConfig rc;
        rc.rotation_trees = rotation_trees;
        rc.fanout_bound = fanout_bound;
        const core::RotationPlan plan = core::plan_rotation(
            *inst.topology, *inst.routes, *inst.router, members, rc);
        const mcast::StreamingResult r =
            engines[t].run_streaming(plan, stream_packets);
        double imbalance = 1.0;
        if (!r.member_packets.empty()) {
          std::int64_t total = 0;
          std::int64_t peak = 0;
          for (std::int64_t n : r.member_packets) {
            total += n;
            peak = std::max(peak, n);
          }
          if (total > 0) {
            imbalance = static_cast<double>(peak) *
                        static_cast<double>(r.member_packets.size()) /
                        static_cast<double>(total);
          }
        }
        samples[job] =
            StreamSample{r.flits_per_us, r.makespan.as_us(),
                         r.p99_gap.as_us(), r.overlap_mean,
                         static_cast<double>(r.rotation_used), imbalance,
                         static_cast<double>(r.telemetry_snapshots)};
      },
      std::max(1, budget / shards));

  StreamingPoint point;
  for (std::size_t t = 0; t < instances_.size(); ++t) {
    StreamingPoint inst_point;
    for (std::size_t rep = 0; rep < sets; ++rep) {
      const StreamSample& s = samples[t * sets + rep];
      inst_point.flits_per_us.add(s.flits_per_us);
      inst_point.makespan_us.add(s.makespan_us);
      inst_point.p99_gap_us.add(s.p99_gap_us);
      inst_point.overlap_mean.add(s.overlap_mean);
      inst_point.rotation_used.add(s.rotation_used);
      inst_point.member_imbalance.add(s.member_imbalance);
      inst_point.telemetry_snapshots.add(s.telemetry_snapshots);
    }
    point.merge(inst_point);
  }
  return point;
}

TrafficPoint Testbed::measure_traffic(
    const traffic::WorkloadConfig& workload,
    const traffic::SchedulerConfig& scheduler, int threads) const {
  const std::int32_t hosts = spec_.num_hosts;

  struct TrafficSample {
    double ops_per_sec = 0.0;
    double flits_per_us = 0.0;
    double makespan_us = 0.0;
    double deferral_ticks = 0.0;
    std::vector<std::pair<traffic::OpClass, double>> fct_us;
    std::uint64_t digest = 0;
  };

  const auto sets = static_cast<std::size_t>(spec_.sets_per_topology);
  const std::size_t replications = instances_.size() * sets;
  const int budget = threads >= 1 ? threads : configured_threads();
  // One pick for the whole call: every replication runs its entire mix
  // on one shared fabric with this shard count (the traffic engine
  // asserts its window choice is stable across the mix).
  const int shards = pick_shards(budget, hosts, replications);
  const std::int64_t window_ns = configured_window_ns();
  log_parallel_plan(budget, shards, window_ns);
  std::vector<traffic::TrafficEngine> engines;
  engines.reserve(instances_.size());
  for (const Instance& inst : instances_) {
    traffic::TrafficConfig tcfg;
    tcfg.params = spec_.params;
    tcfg.network = spec_.network;
    tcfg.scheduler = scheduler;
    tcfg.shards = shards;
    tcfg.window = sim::Time::ns(window_ns);
    engines.emplace_back(*inst.topology, *inst.routes, tcfg);
  }

  std::vector<TrafficSample> samples(replications);
  parallel_for_each(
      samples.size(),
      [&](std::size_t job) {
        const std::size_t t = job / sets;
        const std::size_t rep = job % sets;
        // Same (topology, set) seed derivation as measure(), so traffic
        // sweeps are paired across scheduler policies and load levels.
        traffic::WorkloadConfig wcfg = workload;
        wcfg.seed = workload.seed ^
                    (UINT64_C(0x9e3779b97f4a7c15) * (t + 1)) ^
                    (UINT64_C(0xbf58476d1ce4e5b9) * (rep + 1));
        const traffic::Workload mix =
            traffic::generate_workload(hosts, instances_[t].cco, wcfg);
        const traffic::TrafficResult r = engines[t].run(mix);
        TrafficSample s;
        s.ops_per_sec = r.ops_per_sec;
        s.flits_per_us = r.flits_per_us;
        s.makespan_us = r.makespan.as_us();
        s.deferral_ticks = static_cast<double>(r.deferral_ticks);
        s.fct_us.reserve(r.ops.size());
        for (const traffic::OpRecord& rec : r.ops) {
          s.fct_us.emplace_back(rec.cls, rec.fct().as_us());
        }
        s.digest = r.digest;
        samples[job] = std::move(s);
      },
      std::max(1, budget / shards));

  TrafficPoint point;
  for (std::size_t t = 0; t < instances_.size(); ++t) {
    TrafficPoint inst_point;
    for (std::size_t rep = 0; rep < sets; ++rep) {
      const TrafficSample& s = samples[t * sets + rep];
      inst_point.ops_per_sec.add(s.ops_per_sec);
      inst_point.flits_per_us.add(s.flits_per_us);
      inst_point.makespan_us.add(s.makespan_us);
      inst_point.deferral_ticks.add(s.deferral_ticks);
      for (const auto& [cls, fct] : s.fct_us) {
        inst_point.fct_us.add(fct);
        switch (cls) {
          case traffic::OpClass::kMulticast:
            inst_point.fct_multicast_us.add(fct);
            break;
          case traffic::OpClass::kStream:
            inst_point.fct_stream_us.add(fct);
            break;
          case traffic::OpClass::kCollective:
            inst_point.fct_collective_us.add(fct);
            break;
        }
      }
      for (std::int32_t b = 0; b < 64; b += 8) {
        inst_point.digest ^= (s.digest >> b) & 0xffu;
        inst_point.digest *= 1099511628211ull;  // FNV-1a prime
      }
    }
    point.merge(inst_point);
  }
  return point;
}

namespace {

TestbedSpec to_spec(const IrregularTestbed::Config& cfg) {
  TestbedSpec spec;
  spec.fabric = FabricKind::kIrregular;
  spec.num_hosts = cfg.topology.num_hosts;
  spec.irregular = cfg.topology;
  spec.params = cfg.params;
  spec.network = cfg.network;
  spec.num_topologies = cfg.num_topologies;
  spec.sets_per_topology = cfg.sets_per_topology;
  spec.seed = cfg.seed;
  return spec;
}

}  // namespace

IrregularTestbed::IrregularTestbed(Config config)
    : cfg_{std::move(config)}, testbed_{to_spec(cfg_)} {}

}  // namespace nimcast::harness
