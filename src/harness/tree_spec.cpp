#include "harness/tree_spec.hpp"

#include <algorithm>
#include <stdexcept>

namespace nimcast::harness {

std::int32_t TreeSpec::resolve_k(std::int32_t n, std::int32_t m) const {
  if (n < 1) throw std::invalid_argument("TreeSpec::resolve_k: n < 1");
  switch (kind) {
    case Kind::kBinomial:
      return std::max<std::int32_t>(
          1, core::ceil_log2(static_cast<std::uint64_t>(n)));
    case Kind::kLinear:
      return 1;
    case Kind::kKBinomial:
      if (fixed_k < 1) throw std::invalid_argument("TreeSpec: fixed_k < 1");
      return fixed_k;
    case Kind::kOptimal:
      return core::optimal_k(n, m).k;
  }
  throw std::logic_error("TreeSpec::resolve_k: bad kind");
}

core::RankTree TreeSpec::build(std::int32_t n, std::int32_t m) const {
  return core::make_kbinomial(n, resolve_k(n, m));
}

std::string TreeSpec::name() const {
  switch (kind) {
    case Kind::kBinomial: return "binomial";
    case Kind::kLinear: return "linear";
    case Kind::kKBinomial: return std::to_string(fixed_k) + "-binomial";
    case Kind::kOptimal: return "opt-k-binomial";
  }
  return "?";
}

}  // namespace nimcast::harness
