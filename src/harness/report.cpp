#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace nimcast::harness {

Table::Table(std::vector<std::string> headers)
    : headers_{std::move(headers)} {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = static_cast<std::size_t>(2) * (headers_.size() - 1);
  for (std::size_t w : width) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("Table::write_csv: cannot open " + path);
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].find(',') != std::string::npos) {
        throw std::invalid_argument("Table::write_csv: comma in cell");
      }
      out << (c == 0 ? "" : ",") << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace nimcast::harness
