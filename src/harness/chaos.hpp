#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nimcast::harness {

/// Knobs of one chaos-soak run (ChaosSoak). Every campaign — fabric,
/// operation, fault schedule, timings — is a pure function of
/// (config, campaign index), so a soak is reproducible byte-for-byte
/// from its seed.
struct ChaosConfig {
  /// Seeded campaigns to run. Each campaign draws its own fabric
  /// (irregular / fat tree alternating), one operation from the mix
  /// (multicast, streaming broadcast, and the collectives) and one
  /// randomized fault schedule.
  std::int32_t campaigns = 50;
  std::uint64_t seed = 2026;
  /// Hosts per campaign fabric (must be a positive multiple of 4).
  std::int32_t num_hosts = 32;
  /// Participants per operation (clamped to num_hosts).
  std::int32_t participants = 12;
  /// Packets per logical message (multicast / collectives).
  std::int32_t message_packets = 4;
  /// Stream length and rotation width of streaming campaigns.
  std::int32_t stream_packets = 24;
  std::int32_t rotation_trees = 3;

  /// Background fault mix (net::FaultPlan::random, host-aware overload).
  double link_fail_prob = 0.08;
  double switch_fail_prob = 0.02;
  double host_fail_prob = 0.04;
  /// Probability a campaign *additionally* kills the operation's
  /// initiator mid-run — the root fail-over path.
  double root_kill_prob = 0.35;
  /// Probability a campaign's failed links flap back up (kLinkUp
  /// revival) instead of staying down.
  double link_flap_prob = 0.5;

  /// Intra-run sharding of the multicast-engine campaigns (collectives
  /// always run serial). The soak separately cross-checks that a
  /// sharded rerun is byte-identical (shard_check_every).
  std::int32_t shards = 1;
  std::int32_t shard_threads = 0;
  /// Every how many campaigns the determinism check also reruns the
  /// campaign on a 2-shard engine and compares digests (0 disables).
  std::int32_t shard_check_every = 4;
};

/// Outcome of one campaign. `digest` folds every observable of the run
/// (outcome, per-host completions in nanosecond ticks, delivery bits,
/// repair/handoff telemetry), so two digests are equal iff the runs were
/// byte-identical at the result level.
struct CampaignResult {
  std::int32_t index = 0;
  std::string fabric;     ///< topology name
  std::string operation;  ///< op kind the campaign ran
  std::string outcome;    ///< kComplete/kPartial/kFailed as text
  std::int32_t participants = 0;
  std::int32_t delivered = 0;
  std::int32_t unreachable = 0;
  std::int32_t repairs = 0;
  std::int32_t replans = 0;
  std::int32_t root_handoffs = 0;
  std::int32_t faults_applied = 0;
  bool root_killed = false;  ///< campaign scheduled an initiator kill
  std::uint64_t digest = 0;
  /// Invariant violations this campaign tripped (empty on a clean run):
  /// an engine throw, a reachable-but-undelivered participant on a
  /// non-failed operation, a duplicate completion, or an outcome
  /// inconsistent with the delivery count.
  std::vector<std::string> violations;
};

/// Aggregate of one soak.
struct ChaosReport {
  std::int32_t campaigns = 0;
  std::int32_t complete = 0;
  std::int32_t partial = 0;
  std::int32_t failed = 0;
  std::int32_t root_kills = 0;
  std::int32_t root_handoffs = 0;
  std::int32_t repairs = 0;
  std::int32_t replans = 0;
  /// Total invariant violations (0 on a clean soak), including any
  /// determinism mismatch between reruns of the same campaign.
  std::int32_t violations = 0;
  /// First few violation messages, for diagnostics.
  std::vector<std::string> violation_messages;
  /// Fold of every campaign digest — the soak's byte-determinism
  /// fingerprint (equal across reruns, thread and shard counts).
  std::uint64_t digest = 0;
  std::vector<CampaignResult> results;
};

/// Deterministic chaos-soak driver: seeded randomized campaigns of
/// (fabric x operation x fault schedule) asserting the robustness
/// invariants end to end — no engine throw under degrade-and-continue,
/// reachable participants always delivered unless the payload died with
/// the root (outcome kFailed), no duplicate completions, outcome
/// consistent with the delivery count, and byte-determinism of every
/// campaign across reruns and engine shard counts. Worm-pool hygiene is
/// enforced by the engines themselves (a leaked or stuck worm fails
/// their drain check and surfaces here as a violation).
class ChaosSoak {
 public:
  explicit ChaosSoak(ChaosConfig config);

  /// Runs the full soak: every campaign twice (rerun digest check), plus
  /// a 2-shard rerun every shard_check_every campaigns.
  [[nodiscard]] ChaosReport run() const;

  /// One campaign, pure in (config, index, shards, shard_threads) —
  /// exposed so tests can cross-check determinism across shard and
  /// thread counts directly.
  [[nodiscard]] static CampaignResult campaign(const ChaosConfig& config,
                                               std::int32_t index,
                                               std::int32_t shards,
                                               std::int32_t shard_threads);

  [[nodiscard]] const ChaosConfig& config() const { return config_; }

 private:
  ChaosConfig config_;
};

}  // namespace nimcast::harness
