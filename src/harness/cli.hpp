#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace nimcast::harness {

/// Minimal command-line option parser for the bench/CLI binaries.
///
/// Accepts `--name value` and `--name=value` options plus bare `--flag`
/// switches. Unknown options are an error at `finish()` so typos fail
/// fast, and every option documented via `describe` appears in `usage()`.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Registers documentation for an option (shown by usage()).
  Cli& describe(const std::string& name, const std::string& help);

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback);
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback);
  [[nodiscard]] double get_double(const std::string& name, double fallback);
  /// Bare switch (or --name true/false).
  [[nodiscard]] bool get_flag(const std::string& name);

  /// Validates that every supplied option was consumed; throws
  /// std::invalid_argument listing leftovers otherwise. Returns false
  /// when --help was passed (caller should print usage() and exit 0).
  [[nodiscard]] bool finish() const;

  [[nodiscard]] std::string usage() const;
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  [[nodiscard]] const std::string* raw(const std::string& name);

  std::string program_;
  std::map<std::string, std::string> values_;  ///< name -> value ("" = flag)
  mutable std::set<std::string> consumed_;
  std::vector<std::pair<std::string, std::string>> docs_;
  bool help_ = false;
};

}  // namespace nimcast::harness
