#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ordering.hpp"
#include "harness/tree_spec.hpp"
#include "mcast/multicast_engine.hpp"
#include "netif/system_params.hpp"
#include "network/network_config.hpp"
#include "routing/route_table.hpp"
#include "routing/up_down.hpp"
#include "sim/stats.hpp"
#include "topology/irregular.hpp"

namespace nimcast::harness {

/// Base ordering used when binding trees onto participants.
enum class OrderingKind : std::uint8_t {
  kCco,     ///< the supplied contention-free base chain
  kRandom,  ///< fresh random permutation per repetition (ablation)
};

/// Measurement summaries of one sweep point.
struct MeasurePoint {
  sim::Summary latency_us;       ///< multicast latency per repetition
  sim::Summary block_us;         ///< channel block time per repetition
  sim::Summary peak_buffer;      ///< max NI buffer occupancy (packets)
  sim::Summary buffer_integral;  ///< max per-NI packet-us integral

  void merge(const MeasurePoint& other);
};

/// Runs `repetitions` multicasts of an m-packet message to n-1 random
/// destinations on one concrete system (topology + routes + base chain),
/// binding `spec`'s tree via `ordering`. Draws derive from `seed` alone,
/// so identical seeds give identical participant sets across specs and
/// styles — measurements are paired. This is the generic engine behind
/// IrregularTestbed and the regular-network benches.
///
/// Repetitions are independent (each builds its own Simulator) and run on
/// a worker pool of `threads` threads (0 = NIMCAST_THREADS / hardware
/// concurrency, 1 = strictly serial). Every repetition derives its seed
/// from (`seed`, rep) exactly as the serial path does and samples are
/// folded into the summaries in repetition order, so results are
/// bit-identical for every thread count.
[[nodiscard]] MeasurePoint measure_point(
    const topo::Topology& topology, const routing::RouteTable& routes,
    const core::Chain& base_chain, const netif::SystemParams& params,
    const net::NetworkConfig& network, std::int32_t n, std::int32_t m,
    const TreeSpec& spec, mcast::NiStyle style, OrderingKind ordering,
    std::int32_t repetitions, std::uint64_t seed, int threads = 0);

/// The paper's evaluation rig (Section 5.2): a set of random irregular
/// 64-host topologies with up*/down* routing and CCO base orderings,
/// measured by averaging multicast latency over random destination sets.
///
/// Construction is the expensive part (route tables are all-pairs);
/// `measure` replays identical destination sets for every tree/NI
/// variant, so comparisons are paired.
class IrregularTestbed {
 public:
  struct Config {
    topo::IrregularConfig topology;
    netif::SystemParams params;
    net::NetworkConfig network;
    std::int32_t num_topologies = 10;
    std::int32_t sets_per_topology = 30;
    std::uint64_t seed = 1997;
  };

  using Point = MeasurePoint;

  explicit IrregularTestbed(Config config);

  /// Multicast-set size `n` (source + n-1 destinations), `m` packets.
  /// The (topology, destination-set) replications are independent and are
  /// spread over `threads` workers (0 = NIMCAST_THREADS / hardware
  /// concurrency, 1 = strictly serial); per-replication seeding and the
  /// summary fold order match the serial path, so results are
  /// bit-identical for every thread count.
  [[nodiscard]] Point measure(std::int32_t n, std::int32_t m,
                              const TreeSpec& spec, mcast::NiStyle style,
                              OrderingKind ordering = OrderingKind::kCco,
                              int threads = 0) const;

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::int32_t num_hosts() const {
    return cfg_.topology.num_hosts;
  }

 private:
  struct Instance {
    std::unique_ptr<topo::Topology> topology;
    std::unique_ptr<routing::UpDownRouter> router;
    std::unique_ptr<routing::RouteTable> routes;
    core::Chain cco;
  };

  Config cfg_;
  std::vector<Instance> instances_;
};

}  // namespace nimcast::harness
