#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ordering.hpp"
#include "harness/tree_spec.hpp"
#include "mcast/multicast_engine.hpp"
#include "netif/system_params.hpp"
#include "network/network_config.hpp"
#include "routing/route_table.hpp"
#include "routing/up_down.hpp"
#include "sim/stats.hpp"
#include "topology/fat_tree.hpp"
#include "topology/irregular.hpp"
#include "traffic/scheduler.hpp"
#include "traffic/workload.hpp"

namespace nimcast::harness {

/// Base ordering used when binding trees onto participants.
enum class OrderingKind : std::uint8_t {
  kCco,     ///< the supplied contention-free base chain
  kRandom,  ///< fresh random permutation per repetition (ablation)
};

/// Measurement summaries of one sweep point.
struct MeasurePoint {
  sim::Summary latency_us;       ///< multicast latency per repetition
  sim::Summary block_us;         ///< channel block time per repetition
  sim::Summary peak_buffer;      ///< max NI buffer occupancy (packets)
  sim::Summary buffer_integral;  ///< max per-NI packet-us integral
  sim::Summary events;           ///< simulator events per repetition

  void merge(const MeasurePoint& other);
};

/// Measurement summaries of one streaming-broadcast sweep point
/// (Testbed::measure_streaming). All summaries fold one sample per
/// (topology, source) replication.
struct StreamingPoint {
  sim::Summary flits_per_us;   ///< sustained delivered throughput
  sim::Summary makespan_us;    ///< full-stream completion
  sim::Summary p99_gap_us;     ///< in-order completion tail gap
  sim::Summary overlap_mean;   ///< planner channel-overlap fraction
  sim::Summary rotation_used;  ///< rotation members that carried packets
  /// Per-member balance: max / mean of member_packets within a
  /// replication (1.0 = perfect round-robin; adaptive selection under
  /// contention drives this up as it steers around hot members).
  sim::Summary member_imbalance;
  /// Telemetry snapshots the adaptive selector scored (0 when static).
  sim::Summary telemetry_snapshots;

  void merge(const StreamingPoint& other);
};

/// Measurement summaries of one multi-tenant traffic sweep point
/// (Testbed::measure_traffic). Scalar summaries fold one sample per
/// (topology, workload-seed) replication; the FCT pools hold every
/// operation's flow-completion time so per-class p50/p99 tails are exact.
struct TrafficPoint {
  sim::Summary ops_per_sec;    ///< sustained admitted-op throughput
  sim::Summary flits_per_us;   ///< delivered payload throughput
  sim::Summary makespan_us;    ///< first arrival to last completion
  sim::Summary deferral_ticks; ///< scheduler deferrals per replication
  sim::Samples fct_us;         ///< FCT pool, every op of every replication
  sim::Samples fct_multicast_us;
  sim::Samples fct_stream_us;
  sim::Samples fct_collective_us;
  /// FNV-1a chain over per-replication completion digests in fold order —
  /// the byte-determinism witness for the whole sweep point.
  std::uint64_t digest = 14695981039346656037ull;

  void merge(const TrafficPoint& other);
};

/// Runs `repetitions` multicasts of an m-packet message to n-1 random
/// destinations on one concrete system (topology + routes + base chain),
/// binding `spec`'s tree via `ordering`. Draws derive from `seed` alone,
/// so identical seeds give identical participant sets across specs and
/// styles — measurements are paired. This is the generic engine behind
/// Testbed and the regular-network benches.
///
/// Repetitions are independent (each builds its own Simulator) and run on
/// a worker pool of `threads` threads (0 = NIMCAST_THREADS / hardware
/// concurrency, 1 = strictly serial). Every repetition derives its seed
/// from (`seed`, rep) exactly as the serial path does and samples are
/// folded into the summaries in repetition order, so results are
/// bit-identical for every thread count.
[[nodiscard]] MeasurePoint measure_point(
    const topo::Topology& topology, const routing::RouteTable& routes,
    const core::Chain& base_chain, const netif::SystemParams& params,
    const net::NetworkConfig& network, std::int32_t n, std::int32_t m,
    const TreeSpec& spec, mcast::NiStyle style, OrderingKind ordering,
    std::int32_t repetitions, std::uint64_t seed, int threads = 0);

/// Which fabric family a Testbed generates.
enum class FabricKind : std::uint8_t {
  kIrregular,  ///< random irregular NOW networks (the paper's Section 5.2)
  kFatTree,    ///< two-level folded Clos; deterministic, so one instance
};

/// Full description of a testbed: fabric family, host count, system and
/// network parameters, replication counts. Host count is an explicit
/// field — the harness carries no 64-host assumption; the paper's rig is
/// simply the irregular(64) point of this space.
struct TestbedSpec {
  FabricKind fabric = FabricKind::kIrregular;
  /// Hosts per generated fabric; overrides the fabric config's own count.
  std::int32_t num_hosts = 64;
  /// Consulted when fabric == kIrregular (num_hosts wins over its count).
  topo::IrregularConfig irregular;
  /// Consulted when fabric == kFatTree; must agree with num_hosts.
  topo::FatTreeConfig fat_tree;
  netif::SystemParams params;
  net::NetworkConfig network;
  std::int32_t num_topologies = 10;
  std::int32_t sets_per_topology = 30;
  std::uint64_t seed = 1997;

  /// Irregular fabric scaled to `hosts`: keeps the paper's port budget
  /// (4 hosts + 4 switch links per 8-port switch), so hosts=64 is exactly
  /// the paper's 16-switch system.
  [[nodiscard]] static TestbedSpec make_irregular(std::int32_t hosts);

  /// Square-ish fat tree at `hosts`: `e` edge switches of `hosts/e` hosts
  /// each (e = largest divisor of hosts at or below sqrt(hosts)) over e/2
  /// spines. hosts=64 gives 8x8 leaves over 4 spines (the FatTreeConfig
  /// default); 1024 gives 32x32 over 16. Deterministic fabric, so
  /// num_topologies = 1.
  [[nodiscard]] static TestbedSpec make_fat_tree(std::int32_t hosts);
};

/// A generated set of fabrics with up*/down* routing and CCO base chains,
/// measured by averaging multicast latency over random destination sets —
/// the paper's evaluation method (Section 5.2) generalized over
/// FabricKind and host count.
///
/// Route tables are compressed (lazy): construction is O(switches²)
/// slots, and only switch pairs the measured traffic actually crosses
/// ever materialize a route — the property that lets the same harness
/// drive 1024-host sweeps. `measure` replays identical destination sets
/// for every tree/NI variant, so comparisons are paired.
class Testbed {
 public:
  using Point = MeasurePoint;

  explicit Testbed(TestbedSpec spec);

  /// Multicast-set size `n` (source + n-1 destinations), `m` packets.
  /// The (topology, destination-set) replications are independent and are
  /// spread over `threads` workers (0 = NIMCAST_THREADS / hardware
  /// concurrency, 1 = strictly serial); per-replication seeding and the
  /// summary fold order match the serial path, so results are
  /// bit-identical for every thread count.
  [[nodiscard]] Point measure(std::int32_t n, std::int32_t m,
                              const TreeSpec& spec, mcast::NiStyle style,
                              OrderingKind ordering = OrderingKind::kCco,
                              int threads = 0) const;

  /// Streaming broadcast: `stream_packets` packets from one random
  /// source per replication to every other host, dispatched round-robin
  /// over `rotation_trees` channel-decorrelated k-binomial trees of
  /// fan-out `fanout_bound` (core::plan_rotation). Replication seeding,
  /// thread-budget split and fold order follow measure(), so results
  /// are bit-identical for every thread count; rotation_trees = 1 is
  /// the paper's fixed-tree configuration. `selection` picks the
  /// per-packet member policy (NIMCAST_SELECTION overrides it).
  [[nodiscard]] StreamingPoint measure_streaming(
      std::int32_t stream_packets, std::int32_t rotation_trees,
      std::int32_t fanout_bound, int threads = 0,
      mcast::Selection selection = mcast::Selection::kStatic) const;

  /// Multi-tenant traffic: one generated workload mix per (topology,
  /// set) replication — `workload` with the replication's derived seed —
  /// run end to end through traffic::TrafficEngine under `scheduler`.
  /// Thread-budget split (pick_shards, once per call for the shared
  /// fabric), per-replication seeding and the topology-major fold order
  /// follow measure(), so the point — including its completion digest —
  /// is bit-identical for every thread and shard count.
  [[nodiscard]] TrafficPoint measure_traffic(
      const traffic::WorkloadConfig& workload,
      const traffic::SchedulerConfig& scheduler, int threads = 0) const;

  [[nodiscard]] const TestbedSpec& spec() const { return spec_; }
  [[nodiscard]] std::int32_t num_hosts() const { return spec_.num_hosts; }

  /// Wall-clock spent building topologies + route tables + CCO chains at
  /// construction; the route-build metric bench_scale reports.
  [[nodiscard]] double build_ms() const { return build_ms_; }

  /// Route-table heap footprint summed over instances (see
  /// routing::RouteTable::memory_bytes).
  [[nodiscard]] std::size_t route_memory_bytes() const;

 private:
  struct Instance {
    std::unique_ptr<topo::Topology> topology;
    std::shared_ptr<const routing::UpDownRouter> router;
    std::unique_ptr<routing::RouteTable> routes;
    core::Chain cco;
  };

  TestbedSpec spec_;
  std::vector<Instance> instances_;
  double build_ms_ = 0.0;
};

/// The paper's evaluation rig: random irregular 64-host (by default)
/// topologies. A thin wrapper over Testbed that keeps the original
/// bench-facing Config type; measurement output is byte-identical to the
/// pre-Testbed harness.
class IrregularTestbed {
 public:
  struct Config {
    topo::IrregularConfig topology;
    netif::SystemParams params;
    net::NetworkConfig network;
    std::int32_t num_topologies = 10;
    std::int32_t sets_per_topology = 30;
    std::uint64_t seed = 1997;
  };

  using Point = MeasurePoint;

  explicit IrregularTestbed(Config config);

  [[nodiscard]] Point measure(std::int32_t n, std::int32_t m,
                              const TreeSpec& spec, mcast::NiStyle style,
                              OrderingKind ordering = OrderingKind::kCco,
                              int threads = 0) const {
    return testbed_.measure(n, m, spec, style, ordering, threads);
  }

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::int32_t num_hosts() const {
    return cfg_.topology.num_hosts;
  }

 private:
  Config cfg_;
  Testbed testbed_;
};

}  // namespace nimcast::harness
