#pragma once

#include <cstdint>
#include <vector>

#include "core/host_tree.hpp"
#include "core/ordering.hpp"
#include "sim/sim_time.hpp"
#include "topology/topology.hpp"

namespace nimcast::traffic {

/// What kind of operation a tenant group runs.
enum class OpClass : std::uint8_t {
  kMulticast,   ///< one m-packet message down the group tree
  kStream,      ///< a packet stream; may churn membership mid-stream
  kCollective,  ///< gather-to-root incast, then broadcast back down
};

[[nodiscard]] const char* to_string(OpClass c);

/// One tenant operation of the multi-tenant mix. Every field is fixed at
/// generation time, so a workload is a pure function of its config — the
/// engine replays it identically serial and sharded.
struct TrafficOp {
  OpClass cls = OpClass::kMulticast;
  /// Open-loop arrival: when the group offers the operation, regardless
  /// of fabric state (the scheduler may admit it later).
  sim::Time arrival;
  /// The group tree (kMulticast / kStream phase 1 / kCollective
  /// broadcast phase). Root is the group source.
  core::HostTree tree;
  /// Packets per logical message (kStream: the whole stream).
  std::int32_t packets = 1;

  /// kStream only: membership churn mid-stream. Packets [0, split) ride
  /// `tree`; once they have all been receive-processed, packets
  /// [split, packets) ride `tree2` — the group re-bound after one member
  /// left and (when the fabric has a spare host) one joined. The leaver
  /// receives only the prefix; the joiner only the suffix.
  bool churn = false;
  std::int32_t split = 0;
  core::HostTree tree2;

  /// Destinations that must receive the full operation for it to count
  /// as complete (group size minus the root, both phases for churn).
  [[nodiscard]] std::int32_t group_size() const { return tree.size(); }
};

/// Knobs of the seeded open-loop generator.
struct WorkloadConfig {
  /// Operations in the mix.
  std::int32_t num_ops = 64;
  /// Poisson arrival rate (offered load): mean operations per
  /// millisecond of simulated time.
  double ops_per_ms = 2.0;
  /// Group sizes draw from a bounded Zipf over [min_group, max_group]:
  /// P(size = min_group + j) proportional to (j + 1)^-zipf_s — many
  /// small groups, a heavy-ish tail of large ones.
  std::int32_t min_group = 4;
  std::int32_t max_group = 24;
  double zipf_s = 1.2;
  /// Op-class mix: fraction of streams and collectives; the rest are
  /// plain multicasts.
  double stream_fraction = 0.25;
  double collective_fraction = 0.25;
  /// Probability a stream op churns (join/leave mid-stream). Groups of
  /// fewer than 3 members never churn (nothing to leave).
  double churn_probability = 0.5;
  /// Packets per message by class.
  std::int32_t multicast_packets = 4;
  std::int32_t stream_packets = 12;
  std::int32_t collective_packets = 2;
  std::uint64_t seed = 1997;
};

/// A generated mix: ops sorted by arrival time (ties keep generation
/// order), plus the class census.
struct Workload {
  std::vector<TrafficOp> ops;
  std::int32_t multicasts = 0;
  std::int32_t streams = 0;
  std::int32_t collectives = 0;
  std::int32_t churns = 0;
};

/// Generates the mix for a fabric of `num_hosts` hosts over the
/// contention-free base chain `cco` (trees bind in CCO order, exactly as
/// the single-op harness does). Deterministic: the result is a pure
/// function of (num_hosts, cco, cfg).
[[nodiscard]] Workload generate_workload(std::int32_t num_hosts,
                                         const core::Chain& cco,
                                         const WorkloadConfig& cfg);

}  // namespace nimcast::traffic
