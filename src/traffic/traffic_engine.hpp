#pragma once

#include <cstdint>
#include <vector>

#include "netif/system_params.hpp"
#include "network/network_config.hpp"
#include "routing/route_table.hpp"
#include "sim/sim_time.hpp"
#include "topology/topology.hpp"
#include "traffic/scheduler.hpp"
#include "traffic/workload.hpp"

namespace nimcast::traffic {

/// Engine configuration. The traffic engine always drives smart FPFS
/// NIs (the style every multi-tenant scenario targets) over a pristine
/// fabric: fault plans and loss are rejected — repair interacting with
/// admission control is its own future workload.
struct TrafficConfig {
  netif::SystemParams params;
  net::NetworkConfig network;
  SchedulerConfig scheduler;
  /// Intra-run parallelism, exactly as mcast::MulticastEngine::Config:
  /// > 1 runs the whole mix on the sharded engine, bit-identical to
  /// serial. Computed ONCE for the shared fabric (see TrafficResult::
  /// window_ns) — a mid-mix re-shard would tear down every in-flight
  /// worm, so the engine asserts the choice is stable across the run.
  std::int32_t shards = 1;
  std::int32_t shard_threads = 0;
  /// Conservative-window override (narrowing only), NIMCAST_WINDOW.
  sim::Time window = sim::Time::zero();
};

/// Per-operation completion record.
struct OpRecord {
  OpClass cls = OpClass::kMulticast;
  sim::Time arrival;
  /// When the scheduler admitted (launched) the op; == arrival under
  /// FIFO and for unpaced admissions.
  sim::Time admitted;
  /// Last host-level completion over every message of the op.
  sim::Time completed;
  std::int32_t group = 0;
  std::int32_t packets = 0;
  bool churn = false;
  /// Coordinator ticks the op sat in the deferred queue (paced only).
  std::int32_t deferral_ticks = 0;
  /// Distinct (destination, packet) deliveries of this op.
  std::int64_t packets_delivered = 0;

  /// Flow-completion time: offered arrival to last completion — queueing
  /// wait included, which is what a tenant observes.
  [[nodiscard]] sim::Time fct() const { return completed - arrival; }
};

/// Result of one multi-tenant run.
struct TrafficResult {
  /// Per op, in workload order.
  std::vector<OpRecord> ops;
  /// First arrival to last host-level completion.
  sim::Time makespan;
  /// Distinct (destination, packet) deliveries across the mix.
  std::int64_t packets_delivered = 0;
  /// Sustained ops per second of makespan.
  double ops_per_sec = 0.0;
  /// Delivered 8-byte flits per microsecond of makespan.
  double flits_per_us = 0.0;
  /// Coordinator ticks the run consumed.
  std::int64_t ticks = 0;
  /// Sum of per-op deferral ticks.
  std::int64_t deferral_ticks = 0;
  sim::Time total_channel_block_time;
  std::int64_t events_dispatched = 0;
  /// The single engine choice for the whole mix: shards actually used
  /// and the conservative window (0 = serial engine). The engine throws
  /// std::logic_error if the per-op recomputation could ever disagree
  /// mid-mix (the re-shard regression this replaces).
  std::int32_t shards_used = 1;
  std::int64_t window_ns = 0;
  std::int64_t barrier_wall_ns = 0;
  std::int64_t windows_planned = 0;
  /// FNV-1a digest over the merged, sorted host-completion stream — the
  /// serial-vs-sharded and double-run byte-identity witness.
  std::uint64_t digest = 0;
};

/// Multi-tenant workload engine: N concurrent multicast / streaming /
/// collective operations over ONE shared wormhole fabric, admitted and
/// paced by the contention-aware GroupScheduler.
///
/// Arrivals and coordinator ticks ride coordinated events
/// (mcast::Fabric::schedule_coordinated), so every scheduler decision
/// observes barrier-consistent state and the whole mix is bit-identical
/// between the serial and sharded engines. Compound operations
/// (collective gather -> broadcast, churn prefix -> re-bound suffix)
/// launch their second phase at the first tick after phase 1 completes.
class TrafficEngine {
 public:
  TrafficEngine(const topo::Topology& topology,
                const routing::RouteTable& routes, TrafficConfig config);

  [[nodiscard]] const TrafficConfig& config() const { return config_; }

  /// Runs the whole mix in one simulation. Throws std::invalid_argument
  /// on malformed workloads (empty, non-monotone arrivals, hosts out of
  /// range, faulty/lossy network config) and std::runtime_error if any
  /// destination fails to complete (the fabric is pristine, so anything
  /// less is a bug).
  [[nodiscard]] TrafficResult run(const Workload& workload) const;

  /// The conservative window run() will pick for this workload under
  /// the configured shards (zero = serial engine). Exposed so tests can
  /// assert the once-per-mix choice equals the min over per-op safe
  /// windows.
  [[nodiscard]] sim::Time planned_window(const Workload& workload) const;

 private:
  const topo::Topology& topology_;
  const routing::RouteTable& routes_;
  TrafficConfig config_;
};

}  // namespace nimcast::traffic
