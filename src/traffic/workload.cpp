#include "traffic/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/kbinomial.hpp"
#include "core/optimal_k.hpp"
#include "sim/rng.hpp"

namespace nimcast::traffic {

const char* to_string(OpClass c) {
  switch (c) {
    case OpClass::kMulticast: return "multicast";
    case OpClass::kStream: return "stream";
    case OpClass::kCollective: return "collective";
  }
  return "?";
}

namespace {

/// Optimal-k tree over the group, bound in CCO order — the same
/// construction every single-op harness entry point uses.
core::HostTree bind_group(const core::Chain& cco, topo::HostId root,
                          const std::vector<topo::HostId>& dests,
                          std::int32_t packets) {
  const auto n = static_cast<std::int32_t>(dests.size()) + 1;
  const core::Chain members = core::arrange_participants(cco, root, dests);
  const std::int32_t k = n > 1 ? core::optimal_k(n, packets).k : 1;
  return core::HostTree::bind(core::make_kbinomial(n, k), members);
}

void validate(std::int32_t num_hosts, const WorkloadConfig& cfg) {
  if (num_hosts < 2) {
    throw std::invalid_argument("generate_workload: num_hosts < 2");
  }
  if (cfg.num_ops < 1) {
    throw std::invalid_argument("generate_workload: num_ops < 1");
  }
  if (!(cfg.ops_per_ms > 0.0)) {
    throw std::invalid_argument("generate_workload: ops_per_ms <= 0");
  }
  if (cfg.min_group < 2 || cfg.max_group < cfg.min_group ||
      cfg.max_group > num_hosts) {
    throw std::invalid_argument(
        "generate_workload: group bounds out of [2, num_hosts]");
  }
  if (cfg.stream_fraction < 0.0 || cfg.collective_fraction < 0.0 ||
      cfg.stream_fraction + cfg.collective_fraction > 1.0) {
    throw std::invalid_argument("generate_workload: bad class fractions");
  }
  if (cfg.multicast_packets < 1 || cfg.stream_packets < 1 ||
      cfg.collective_packets < 1) {
    throw std::invalid_argument("generate_workload: packets < 1");
  }
}

}  // namespace

Workload generate_workload(std::int32_t num_hosts, const core::Chain& cco,
                           const WorkloadConfig& cfg) {
  validate(num_hosts, cfg);
  sim::Rng rng{cfg.seed ^ UINT64_C(0x7261666669636b31)};

  // Bounded-Zipf cumulative weights over group sizes.
  const std::size_t sizes =
      static_cast<std::size_t>(cfg.max_group - cfg.min_group) + 1;
  std::vector<double> cum(sizes, 0.0);
  double total = 0.0;
  for (std::size_t j = 0; j < sizes; ++j) {
    total += std::pow(static_cast<double>(j + 1), -cfg.zipf_s);
    cum[j] = total;
  }

  const double mean_gap_ns = 1.0e6 / cfg.ops_per_ms;
  Workload wl;
  wl.ops.reserve(static_cast<std::size_t>(cfg.num_ops));
  sim::Time t = sim::Time::zero();
  for (std::int32_t i = 0; i < cfg.num_ops; ++i) {
    // Poisson arrivals: exponential inter-arrival gaps, quantized to the
    // simulator's nanosecond grid (at least 1 ns so arrival coordination
    // keys stay per-op FIFO even under extreme offered load).
    const double u = std::max(rng.next_double(), 1.0e-12);
    const double gap = -std::log(u) * mean_gap_ns;
    t = t + sim::Time::ns(std::max<sim::Time::rep>(
            1, static_cast<sim::Time::rep>(std::llround(gap))));

    const double uz = rng.next_double() * total;
    std::size_t j = 0;
    while (j + 1 < sizes && cum[j] < uz) ++j;
    const auto group = cfg.min_group + static_cast<std::int32_t>(j);

    const auto draw = rng.sample_without_replacement(
        static_cast<std::size_t>(num_hosts), static_cast<std::size_t>(group));
    const auto root = static_cast<topo::HostId>(draw.front());
    std::vector<topo::HostId> dests;
    dests.reserve(draw.size() - 1);
    for (std::size_t d = 1; d < draw.size(); ++d) {
      dests.push_back(static_cast<topo::HostId>(draw[d]));
    }

    TrafficOp op;
    op.arrival = t;
    const double uc = rng.next_double();
    if (uc < cfg.collective_fraction) {
      op.cls = OpClass::kCollective;
      op.packets = cfg.collective_packets;
    } else if (uc < cfg.collective_fraction + cfg.stream_fraction) {
      op.cls = OpClass::kStream;
      op.packets = cfg.stream_packets;
    } else {
      op.cls = OpClass::kMulticast;
      op.packets = cfg.multicast_packets;
    }
    op.tree = bind_group(cco, root, dests, op.packets);

    if (op.cls == OpClass::kStream && group >= 3 && op.packets >= 2 &&
        rng.next_double() < cfg.churn_probability) {
      // One member leaves; when a spare host exists, one joins. The
      // leaver draw burns an rng step even when churn ends up a no-op
      // re-bind, keeping the stream position independent of topology.
      const auto leave_ix = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(dests.size())));
      std::vector<topo::HostId> dests2;
      dests2.reserve(dests.size());
      for (std::size_t d = 0; d < dests.size(); ++d) {
        if (d != leave_ix) dests2.push_back(dests[d]);
      }
      if (group < num_hosts) {
        std::vector<std::uint8_t> in_group(
            static_cast<std::size_t>(num_hosts), 0);
        for (std::size_t d : draw) in_group[d] = 1;
        auto joiner = static_cast<topo::HostId>(
            rng.next_below(static_cast<std::uint64_t>(num_hosts)));
        while (in_group[static_cast<std::size_t>(joiner)] != 0) {
          joiner = (joiner + 1) % num_hosts;
        }
        dests2.push_back(joiner);
      }
      op.churn = true;
      op.split = 1 + static_cast<std::int32_t>(rng.next_below(
                         static_cast<std::uint64_t>(op.packets - 1)));
      op.tree2 = bind_group(cco, root, dests2, op.packets - op.split);
      ++wl.churns;
    }

    switch (op.cls) {
      case OpClass::kMulticast: ++wl.multicasts; break;
      case OpClass::kStream: ++wl.streams; break;
      case OpClass::kCollective: ++wl.collectives; break;
    }
    wl.ops.push_back(std::move(op));
  }
  return wl;
}

}  // namespace nimcast::traffic
