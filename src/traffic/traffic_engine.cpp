#include "traffic/traffic_engine.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "mcast/fabric.hpp"
#include "netif/host.hpp"
#include "netif/smart_ni.hpp"
#include "network/wormhole_network.hpp"
#include "routing/route_alternatives.hpp"
#include "sim/simulator.hpp"

namespace nimcast::traffic {

namespace {

/// One launchable message of the flattened mix. Tree messages ride a
/// workload tree; a null tree is a two-node gather leg src -> dst (the
/// collective incast phase). Message id = plan index + 1.
struct MsgPlan {
  std::size_t op = 0;
  std::int32_t phase = 0;
  const core::HostTree* tree = nullptr;
  topo::HostId src = topo::kInvalidId;
  topo::HostId dst = topo::kInvalidId;
  std::int32_t packets = 1;
  /// Destinations that must complete this message.
  std::int32_t expected = 0;

  [[nodiscard]] topo::HostId root() const { return tree ? tree->root : src; }
};

/// Flattens the mix: multicasts and plain streams are one phase-0 tree
/// message; churn streams split into a phase-0 prefix on `tree` and a
/// phase-1 suffix on `tree2`; collectives gather every member to the
/// root (phase 0, one two-node message per member) then broadcast back
/// down the tree (phase 1).
std::vector<MsgPlan> build_plans(const Workload& workload) {
  std::vector<MsgPlan> plans;
  for (std::size_t op = 0; op < workload.ops.size(); ++op) {
    const TrafficOp& o = workload.ops[op];
    switch (o.cls) {
      case OpClass::kMulticast:
      case OpClass::kStream:
        if (o.churn) {
          plans.push_back(MsgPlan{op, 0, &o.tree, topo::kInvalidId,
                                  topo::kInvalidId, o.split,
                                  o.tree.size() - 1});
          plans.push_back(MsgPlan{op, 1, &o.tree2, topo::kInvalidId,
                                  topo::kInvalidId, o.packets - o.split,
                                  o.tree2.size() - 1});
        } else {
          plans.push_back(MsgPlan{op, 0, &o.tree, topo::kInvalidId,
                                  topo::kInvalidId, o.packets,
                                  o.tree.size() - 1});
        }
        break;
      case OpClass::kCollective:
        for (topo::HostId h : o.tree.nodes) {
          if (h == o.tree.root) continue;
          plans.push_back(
              MsgPlan{op, 0, nullptr, h, o.tree.root, o.packets, 1});
        }
        plans.push_back(MsgPlan{op, 1, &o.tree, topo::kInvalidId,
                                topo::kInvalidId, o.packets,
                                o.tree.size() - 1});
        break;
    }
  }
  return plans;
}

void collect_edges(const MsgPlan& m,
                   std::vector<std::pair<topo::HostId, topo::HostId>>& out) {
  if (m.tree) {
    for (topo::HostId h : m.tree->nodes) {
      for (topo::HostId c : m.tree->children.at(h)) out.emplace_back(h, c);
    }
  } else {
    out.emplace_back(m.src, m.dst);
  }
}

void validate_workload(const topo::Topology& topology,
                       const Workload& workload) {
  if (workload.ops.empty()) {
    throw std::invalid_argument("TrafficEngine: empty workload");
  }
  sim::Time prev = sim::Time::zero();
  for (const TrafficOp& o : workload.ops) {
    if (o.arrival < prev) {
      throw std::invalid_argument(
          "TrafficEngine: arrivals not nondecreasing");
    }
    prev = o.arrival;
    if (o.packets < 1) {
      throw std::invalid_argument("TrafficEngine: packets < 1");
    }
    if (o.tree.size() < 2) {
      throw std::invalid_argument("TrafficEngine: group smaller than 2");
    }
    for (topo::HostId h : o.tree.nodes) {
      if (h < 0 || h >= topology.num_hosts()) {
        throw std::invalid_argument("TrafficEngine: host out of range");
      }
    }
    if (o.churn) {
      if (o.cls != OpClass::kStream) {
        throw std::invalid_argument(
            "TrafficEngine: churn on a non-stream operation");
      }
      if (o.split < 1 || o.split >= o.packets) {
        throw std::invalid_argument(
            "TrafficEngine: churn split out of [1, packets)");
      }
      if (o.tree2.size() < 1 || o.tree2.root != o.tree.root) {
        throw std::invalid_argument(
            "TrafficEngine: churn re-bind disagrees on root");
      }
      for (topo::HostId h : o.tree2.nodes) {
        if (h < 0 || h >= topology.num_hosts()) {
          throw std::invalid_argument("TrafficEngine: host out of range");
        }
      }
    }
  }
}

}  // namespace

TrafficEngine::TrafficEngine(const topo::Topology& topology,
                             const routing::RouteTable& routes,
                             TrafficConfig config)
    : topology_{topology}, routes_{routes}, config_{config} {
  if (!config_.network.faults.empty()) {
    throw std::invalid_argument(
        "TrafficEngine: fault plans are not supported (the multi-tenant "
        "engine runs a pristine fabric; repair interacting with admission "
        "control is a separate workload)");
  }
  if (config_.network.loss_rate > 0.0) {
    throw std::invalid_argument("TrafficEngine: loss is not supported");
  }
}

sim::Time TrafficEngine::planned_window(const Workload& workload) const {
  validate_workload(topology_, workload);
  if (config_.shards <= 1) return sim::Time::zero();
  std::size_t max_hops = 0;
  if (config_.network.release_model == net::ReleaseModel::kPipelined) {
    std::vector<std::pair<topo::HostId, topo::HostId>> edges;
    for (const MsgPlan& m : build_plans(workload)) {
      edges.clear();
      collect_edges(m, edges);
      for (const auto& [a, b] : edges) {
        // Both directions: drain acknowledgements retrace the edge.
        max_hops = std::max({max_hops, routes_.hops(a, b), routes_.hops(b, a)});
      }
    }
  }
  return mcast::Fabric::conservative_window(config_.network, max_hops,
                                            config_.window);
}

TrafficResult TrafficEngine::run(const Workload& workload) const {
  validate_workload(topology_, workload);
  const std::vector<MsgPlan> plans = build_plans(workload);
  const std::size_t num_ops = workload.ops.size();

  // Per-op message index lists by phase, participants, channel
  // footprints (every message of the op, forward edge direction — the
  // switch channels the op's worms will fight over).
  std::vector<std::vector<std::size_t>> op_msgs0(num_ops);
  std::vector<std::vector<std::size_t>> op_msgs1(num_ops);
  std::vector<std::vector<std::int32_t>> op_foot(num_ops);
  std::unordered_set<topo::HostId> participants;
  {
    std::vector<std::vector<std::pair<topo::HostId, topo::HostId>>> op_edges(
        num_ops);
    for (std::size_t i = 0; i < plans.size(); ++i) {
      const MsgPlan& m = plans[i];
      (m.phase == 0 ? op_msgs0 : op_msgs1)[m.op].push_back(i);
      collect_edges(m, op_edges[m.op]);
      if (m.tree) {
        for (topo::HostId h : m.tree->nodes) participants.insert(h);
      } else {
        participants.insert(m.src);
        participants.insert(m.dst);
      }
    }
    for (std::size_t op = 0; op < num_ops; ++op) {
      op_foot[op] =
          routing::edge_channel_footprint(topology_, routes_, op_edges[op]);
    }
  }

  // The ONE window choice for the whole shared fabric. A mid-mix
  // re-shard would tear down every in-flight worm, so the global pick
  // must already be safe for every operation: assert it equals the min
  // over per-op conservative windows (the regression this engine
  // replaces computed pick_window per single operation).
  const sim::Time window = planned_window(workload);
  if (config_.shards > 1) {
    sim::Time per_op_min;
    bool first = true;
    for (std::size_t op = 0; op < num_ops; ++op) {
      std::size_t hops = 0;
      if (config_.network.release_model == net::ReleaseModel::kPipelined) {
        std::vector<std::pair<topo::HostId, topo::HostId>> edges;
        for (std::size_t i : op_msgs0[op]) collect_edges(plans[i], edges);
        for (std::size_t i : op_msgs1[op]) collect_edges(plans[i], edges);
        for (const auto& [a, b] : edges) {
          hops = std::max({hops, routes_.hops(a, b), routes_.hops(b, a)});
        }
      }
      const sim::Time w = mcast::Fabric::conservative_window(
          config_.network, hops, config_.window);
      per_op_min = first ? w : std::min(per_op_min, w);
      first = false;
    }
    if (per_op_min != window) {
      throw std::logic_error(
          "TrafficEngine: shared-fabric window diverged from the per-op "
          "minimum — the engine would have to re-shard mid-mix");
    }
  }

  mcast::Fabric fabric{topology_, routes_, config_.network, config_.shards,
                       window,    {},      nullptr};
  const bool sharded_mode = fabric.sharded();
  const std::int32_t num_shards = fabric.num_shards();
  net::WormholeNetwork& network = fabric.network();
  const auto sim_for_host = [&](topo::HostId h) -> sim::Simulator& {
    return fabric.sim_for_host(h);
  };

  // Derived scheduler knobs. The tick period is one steady-state packet
  // service time (receive + widest forwarding fan-out of the mix) — long
  // enough for fresh block-time deltas between re-scores, short enough
  // to react within a packet or two. A channel is telemetry-hot when it
  // blocked worms for ~4 packet serialization times inside one tick.
  SchedulerConfig scfg = config_.scheduler;
  if (scfg.tick == sim::Time::zero()) {
    std::int64_t fanout = 1;
    for (const MsgPlan& m : plans) {
      if (!m.tree) continue;
      for (topo::HostId h : m.tree->nodes) {
        fanout = std::max(
            fanout, static_cast<std::int64_t>(m.tree->children.at(h).size()));
      }
    }
    scfg.tick = config_.params.t_rcv + config_.params.t_snd * fanout;
  }
  if (scfg.hot_block_ns == 0) {
    scfg.hot_block_ns = 4 * config_.network.serialization_time().count_ns();
  }
  GroupScheduler sched{scfg, network.num_channels()};

  std::unordered_map<topo::HostId, std::unique_ptr<netif::NetworkInterface>>
      nis;
  std::unordered_map<topo::HostId, std::unique_ptr<netif::Host>> hosts;
  for (topo::HostId h : participants) {
    sim::Simulator& hsim = sim_for_host(h);
    nis.emplace(h, std::make_unique<netif::FpfsNi>(hsim, network,
                                                   config_.params, h,
                                                   nullptr));
    hosts.emplace(h, std::make_unique<netif::Host>(hsim, h, config_.params));
  }

  for (std::size_t i = 0; i < plans.size(); ++i) {
    const MsgPlan& m = plans[i];
    const auto message = static_cast<net::MessageId>(i + 1);
    if (m.tree) {
      for (topo::HostId h : m.tree->nodes) {
        netif::ForwardingEntry entry;
        entry.children = m.tree->children.at(h);
        entry.packet_count = m.packets;
        entry.is_destination = (h != m.tree->root);
        nis.at(h)->install(message, entry);
      }
    } else {
      netif::ForwardingEntry at_src;
      at_src.children = {m.dst};
      at_src.packet_count = m.packets;
      at_src.is_destination = false;
      nis.at(m.src)->install(message, at_src);
      netif::ForwardingEntry at_dst;
      at_dst.packet_count = m.packets;
      at_dst.is_destination = true;
      nis.at(m.dst)->install(message, at_dst);
    }
  }

  // Per-(message, destination) NI-completion flags. Flat per-host bytes:
  // each slot is written only by its owner shard's thread during a
  // window; the coordinator reads them only at barrier instants.
  std::vector<std::vector<std::uint8_t>> arrived(
      plans.size(),
      std::vector<std::uint8_t>(static_cast<std::size_t>(topology_.num_hosts()),
                                0));

  // Host-level completion records, buffered per shard during the run and
  // merged afterwards, sorted by (time, host, message) — bit-identical
  // serial vs sharded, as in MulticastEngine.
  struct CompletionLog {
    std::vector<std::tuple<std::size_t, topo::HostId, sim::Time>> host_done;
  };
  std::vector<std::unique_ptr<CompletionLog>> logs;
  for (std::int32_t s = 0; s < num_shards; ++s) {
    logs.push_back(std::make_unique<CompletionLog>());
  }

  for (auto& [h, ni] : nis) {
    ni->on_message_at_ni = [&](topo::HostId dest, net::MessageId msg) {
      const auto mi = static_cast<std::size_t>(msg - 1);
      auto& seen = arrived[mi][static_cast<std::size_t>(dest)];
      if (seen != 0) return;
      seen = 1;
      CompletionLog& log = *logs[static_cast<std::size_t>(
          sharded_mode ? network.shard_of_host(dest) : 0)];
      hosts.at(dest)->software_receive([&, logp = &log, dest, msg, mi] {
        logp->host_done.emplace_back(mi, dest, sim_for_host(dest).now());
        nis.at(dest)->after_host_receive(msg, *hosts.at(dest));
      });
    };
  }

  // ---- Coordinator state. Mutated ONLY inside coordinated events (the
  // single-threaded barrier phase in sharded mode), so every admission
  // decision is a pure function of simulated history.
  struct OpState {
    bool admitted = false;
    bool phase1_launched = false;
    bool released = false;
    std::int32_t waited = 0;
    sim::Time admitted_at;
  };
  std::vector<OpState> st(num_ops);
  std::vector<std::uint8_t> msg_done(plans.size(), 0);
  std::vector<std::size_t> deferred;  // op indices, arrival order
  std::vector<std::int64_t> block_scratch(
      static_cast<std::size_t>(network.num_channels()), 0);
  std::int64_t ticks = 0;
  bool tick_active = false;
  sim::Time next_tick;

  const auto launch_msg = [&](std::size_t i) {
    const auto message = static_cast<net::MessageId>(i + 1);
    const topo::HostId root = plans[i].root();
    nis.at(root)->start_from_host(message, *hosts.at(root));
  };

  const auto refresh_msg_done = [&](std::size_t i) {
    if (msg_done[i] != 0) return;
    const MsgPlan& m = plans[i];
    if (m.tree) {
      for (topo::HostId h : m.tree->nodes) {
        if (h != m.tree->root &&
            arrived[i][static_cast<std::size_t>(h)] == 0) {
          return;
        }
      }
    } else if (arrived[i][static_cast<std::size_t>(m.dst)] == 0) {
      return;
    }
    msg_done[i] = 1;
  };
  const auto all_done = [&](const std::vector<std::size_t>& msgs) {
    for (std::size_t i : msgs) {
      if (msg_done[i] == 0) return false;
    }
    return true;
  };

  // One coordinator sweep, run at every coordinated instant (arrival or
  // tick): fold the fabric's view into the scheduler, then releases
  // before phase transitions before (at ticks) admissions, so freed
  // capacity is visible to every decision at the same instant.
  const auto sweep = [&] {
    for (std::size_t c = 0; c < block_scratch.size(); ++c) {
      block_scratch[c] = network.channel_block_ns(static_cast<std::int32_t>(c));
    }
    sched.refresh_telemetry(block_scratch);
    for (std::size_t op = 0; op < num_ops; ++op) {
      if (!st[op].admitted || st[op].released) continue;
      for (std::size_t i : op_msgs0[op]) refresh_msg_done(i);
      if (st[op].phase1_launched) {
        for (std::size_t i : op_msgs1[op]) refresh_msg_done(i);
      }
    }
    for (std::size_t op = 0; op < num_ops; ++op) {
      OpState& s = st[op];
      if (!s.admitted || s.released) continue;
      if (s.phase1_launched && all_done(op_msgs0[op]) &&
          all_done(op_msgs1[op])) {
        sched.release(op_foot[op]);
        s.released = true;
      }
    }
    for (std::size_t op = 0; op < num_ops; ++op) {
      OpState& s = st[op];
      if (!s.admitted || s.phase1_launched) continue;
      if (!all_done(op_msgs0[op])) continue;
      for (std::size_t i : op_msgs1[op]) launch_msg(i);
      s.phase1_launched = true;
    }
  };

  const auto admit_op = [&](std::size_t op, sim::Time at) {
    sched.admit(op_foot[op]);
    OpState& s = st[op];
    s.admitted = true;
    s.admitted_at = at;
    s.phase1_launched = op_msgs1[op].empty();
    for (std::size_t i : op_msgs0[op]) launch_msg(i);
  };

  // The tick chain runs only while it has something to drive: a deferred
  // op waiting for capacity, or an admitted compound op whose second
  // phase still needs launching. Identical under both policies when no
  // deferral happens, which makes pacing byte-identical to the FIFO
  // baseline at single-group offered load.
  const auto need_ticks = [&] {
    if (!deferred.empty()) return true;
    for (std::size_t op = 0; op < num_ops; ++op) {
      if (st[op].admitted && !st[op].phase1_launched) return true;
    }
    return false;
  };

  // Coordination keys: one per arrival in op order, the tick chain's
  // last — matching sharded registration order (arrivals register at
  // setup, ticks during the run), so same-instant arrival-before-tick
  // ordering agrees between the engines.
  std::vector<std::uint64_t> arrival_keys(num_ops, 0);
  for (std::size_t op = 0; op < num_ops; ++op) {
    arrival_keys[op] = fabric.reserve_coordination_key();
  }
  const std::uint64_t tick_key = fabric.reserve_coordination_key();

  std::function<void()> tick_fn;
  const auto ensure_tick = [&](sim::Time now) {
    if (tick_active || !need_ticks()) return;
    tick_active = true;
    next_tick = now + scfg.tick;
    fabric.schedule_coordinated(next_tick, tick_key, tick_fn);
  };
  tick_fn = [&] {
    tick_active = false;
    ++ticks;
    sweep();
    std::vector<std::size_t> still;
    for (std::size_t op : deferred) {
      if (sched.would_admit(op_foot[op], st[op].waited)) {
        admit_op(op, next_tick);
      } else {
        ++st[op].waited;
        still.push_back(op);
      }
    }
    deferred = std::move(still);
    if (need_ticks()) {
      tick_active = true;
      next_tick = next_tick + scfg.tick;
      fabric.schedule_coordinated(next_tick, tick_key, tick_fn);
    }
  };

  for (std::size_t op = 0; op < num_ops; ++op) {
    const sim::Time at = workload.ops[op].arrival;
    fabric.schedule_coordinated(at, arrival_keys[op], [&, op, at] {
      sweep();
      const bool now_ok =
          scfg.policy == Policy::kFifo ||
          (deferred.empty() && sched.would_admit(op_foot[op], 0));
      if (now_ok) {
        admit_op(op, at);
      } else {
        deferred.push_back(op);
      }
      ensure_tick(at);
    });
  }

  fabric.run(config_.shard_threads);
  if (network.in_flight() != 0) {
    throw std::runtime_error(
        "TrafficEngine: network deadlock (worms still in flight)");
  }

  // Merge the per-shard completion logs into one total order. Keys
  // (time, host, message) are unique, so the sort is engine- and
  // thread-count-independent.
  std::vector<std::tuple<std::size_t, topo::HostId, sim::Time>> host_all;
  for (const auto& log : logs) {
    host_all.insert(host_all.end(), log->host_done.begin(),
                    log->host_done.end());
  }
  std::sort(host_all.begin(), host_all.end(),
            [](const auto& a, const auto& b) {
              return std::make_tuple(std::get<2>(a), std::get<1>(a),
                                     std::get<0>(a)) <
                     std::make_tuple(std::get<2>(b), std::get<1>(b),
                                     std::get<0>(b));
            });

  std::vector<std::int32_t> msg_completions(plans.size(), 0);
  std::vector<sim::Time> msg_last(plans.size());
  std::uint64_t digest = 14695981039346656037ull;  // FNV-1a offset basis
  const auto fnv = [&digest](std::uint64_t v) {
    for (std::int32_t b = 0; b < 64; b += 8) {
      digest ^= (v >> b) & 0xffu;
      digest *= 1099511628211ull;  // FNV-1a prime
    }
  };
  for (const auto& [mi, h, t] : host_all) {
    ++msg_completions[mi];
    msg_last[mi] = std::max(msg_last[mi], t);
    fnv(static_cast<std::uint64_t>(t.count_ns()));
    fnv(static_cast<std::uint64_t>(h));
    fnv(static_cast<std::uint64_t>(mi));
  }
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (msg_completions[i] != plans[i].expected) {
      throw std::runtime_error(
          "TrafficEngine: message " + std::to_string(i + 1) + " completed " +
          std::to_string(msg_completions[i]) + "/" +
          std::to_string(plans[i].expected) + " destinations");
    }
  }

  TrafficResult result;
  result.ops.resize(num_ops);
  sim::Time last_completion;
  std::int64_t total_deferrals = 0;
  for (std::size_t op = 0; op < num_ops; ++op) {
    const TrafficOp& o = workload.ops[op];
    OpRecord& rec = result.ops[op];
    rec.cls = o.cls;
    rec.arrival = o.arrival;
    rec.admitted = st[op].admitted_at;
    rec.group = o.group_size();
    rec.packets = o.packets;
    rec.churn = o.churn;
    rec.deferral_ticks = st[op].waited;
    total_deferrals += st[op].waited;
    for (const auto& msgs : {op_msgs0[op], op_msgs1[op]}) {
      for (std::size_t i : msgs) {
        rec.completed = std::max(rec.completed, msg_last[i]);
        rec.packets_delivered += static_cast<std::int64_t>(plans[i].expected) *
                                 plans[i].packets;
      }
    }
    result.packets_delivered += rec.packets_delivered;
    last_completion = std::max(last_completion, rec.completed);
  }
  result.makespan = last_completion - workload.ops.front().arrival;
  result.deferral_ticks = total_deferrals;
  result.ticks = ticks;
  if (result.makespan > sim::Time::zero()) {
    result.ops_per_sec = static_cast<double>(num_ops) /
                         (result.makespan.as_us() * 1.0e-6);
    const double flits =
        static_cast<double>(result.packets_delivered) *
        (static_cast<double>(config_.network.packet_bytes) / 8.0);
    result.flits_per_us = flits / result.makespan.as_us();
  }
  result.total_channel_block_time = network.total_block_time();
  result.events_dispatched = fabric.events_dispatched();
  result.shards_used = fabric.num_shards();
  result.window_ns = window.count_ns();
  result.barrier_wall_ns = fabric.barrier_wall_ns();
  result.windows_planned = fabric.windows_planned();
  result.digest = digest;
  return result;
}

}  // namespace nimcast::traffic
