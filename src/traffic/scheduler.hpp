#pragma once

#include <cstdint>
#include <vector>

#include "sim/sim_time.hpp"

namespace nimcast::traffic {

/// Admission policy of the group scheduler.
enum class Policy : std::uint8_t {
  /// Admit every operation the instant it arrives — the no-pacing A/B
  /// baseline. All contention resolution happens inside the wormhole
  /// fabric (blocked worms holding acquired channels).
  kFifo,
  /// Contention-aware pacing: defer an arriving operation when too much
  /// of its channel footprint is already held by in-flight trees or
  /// measured hot by the per-channel block-time telemetry; deferred
  /// operations re-score at every coordinator tick.
  kPaced,
};

[[nodiscard]] const char* to_string(Policy p);

struct SchedulerConfig {
  Policy policy = Policy::kPaced;
  /// Admit when busy-channel count * 1000 <= tolerance * footprint size:
  /// the fraction of an operation's switch-channel footprint that may
  /// already be contended. 0 = only disjoint trees overlap-admit;
  /// 1000 = admit always (pure FIFO with extra steps).
  std::int32_t overlap_tolerance_x1000 = 200;
  /// Telemetry term: a channel also counts busy when it accumulated more
  /// than this much block time (ns) since the previous tick — the fabric
  /// says it is congested even when no admitted footprint covers it.
  /// 0 asks the engine to derive ~4 packet serialization times.
  std::int64_t hot_block_ns = 0;
  /// Starvation bound: any deferred operation is force-admitted once it
  /// has waited this many ticks, whatever its score (per-op aging, not
  /// head-of-line only — a younger op whose wait expires is admitted
  /// even while an older deferred op is still waiting).
  std::int32_t max_defer_ticks = 12;
  /// Coordinator tick period (re-score cadence, phase-transition
  /// granularity). Zero asks the engine to derive one steady-state
  /// packet period from the system parameters.
  sim::Time tick;
};

/// Deterministic contention ledger behind admission decisions. All state
/// mutates only inside coordinator events (the single-threaded
/// barrier-phase in the sharded engine), so decisions are a pure
/// function of simulated history — bit-identical serial vs sharded.
///
/// Scoring: a channel is *busy* when an in-flight admitted operation's
/// footprint covers it, or when the latest telemetry refresh saw more
/// than `hot_block_ns` of fresh block time on it. An operation admits
/// when at most `overlap_tolerance_x1000`/1000 of its footprint is busy
/// (an empty fabric always admits; any op aged past `max_defer_ticks`
/// always admits).
class GroupScheduler {
 public:
  GroupScheduler(SchedulerConfig cfg, std::int32_t num_channels);

  [[nodiscard]] const SchedulerConfig& config() const { return cfg_; }

  /// Counts `footprint`'s channels as held by one more in-flight tree.
  void admit(const std::vector<std::int32_t>& footprint);
  /// Releases a previously admitted footprint.
  void release(const std::vector<std::int32_t>& footprint);

  /// Admission verdict for an operation with `footprint` that has been
  /// deferred for `waited_ticks` coordinator ticks (0 at arrival).
  [[nodiscard]] bool would_admit(const std::vector<std::int32_t>& footprint,
                                 std::int32_t waited_ticks) const;

  /// Feeds the per-channel cumulative block-time counters (index =
  /// channel id, value = total block ns so far); the delta against the
  /// previous refresh is the telemetry busy signal until the next one.
  void refresh_telemetry(const std::vector<std::int64_t>& block_ns);

  [[nodiscard]] std::int32_t in_flight() const { return in_flight_; }
  /// Busy-channel count of `footprint` under the current ledger — the
  /// score would_admit thresholds (exposed for tests and telemetry).
  [[nodiscard]] std::int32_t busy_channels(
      const std::vector<std::int32_t>& footprint) const;

 private:
  SchedulerConfig cfg_;
  /// In-flight admitted trees covering each channel.
  std::vector<std::int32_t> users_;
  /// Block-time delta accumulated over the last tick period.
  std::vector<std::int64_t> delta_block_;
  std::vector<std::int64_t> prev_block_;
  std::int32_t in_flight_ = 0;
};

}  // namespace nimcast::traffic
