#include "traffic/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace nimcast::traffic {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kFifo: return "fifo";
    case Policy::kPaced: return "paced";
  }
  return "?";
}

GroupScheduler::GroupScheduler(SchedulerConfig cfg, std::int32_t num_channels)
    : cfg_{cfg} {
  if (num_channels < 0) {
    throw std::invalid_argument("GroupScheduler: negative channel count");
  }
  if (cfg_.overlap_tolerance_x1000 < 0 ||
      cfg_.overlap_tolerance_x1000 > 1000) {
    throw std::invalid_argument(
        "GroupScheduler: overlap_tolerance_x1000 out of [0, 1000]");
  }
  if (cfg_.max_defer_ticks < 1) {
    throw std::invalid_argument("GroupScheduler: max_defer_ticks < 1");
  }
  const auto n = static_cast<std::size_t>(num_channels);
  users_.assign(n, 0);
  delta_block_.assign(n, 0);
  prev_block_.assign(n, 0);
}

void GroupScheduler::admit(const std::vector<std::int32_t>& footprint) {
  for (std::int32_t c : footprint) ++users_[static_cast<std::size_t>(c)];
  ++in_flight_;
}

void GroupScheduler::release(const std::vector<std::int32_t>& footprint) {
  for (std::int32_t c : footprint) --users_[static_cast<std::size_t>(c)];
  --in_flight_;
}

std::int32_t GroupScheduler::busy_channels(
    const std::vector<std::int32_t>& footprint) const {
  std::int32_t busy = 0;
  for (std::int32_t c : footprint) {
    const auto i = static_cast<std::size_t>(c);
    if (users_[i] > 0 || delta_block_[i] > cfg_.hot_block_ns) ++busy;
  }
  return busy;
}

bool GroupScheduler::would_admit(const std::vector<std::int32_t>& footprint,
                                 std::int32_t waited_ticks) const {
  if (cfg_.policy == Policy::kFifo) return true;
  if (in_flight_ == 0) return true;
  if (waited_ticks >= cfg_.max_defer_ticks) return true;
  const auto busy = static_cast<std::int64_t>(busy_channels(footprint));
  const auto size = static_cast<std::int64_t>(footprint.size());
  return busy * 1000 <= static_cast<std::int64_t>(
                            cfg_.overlap_tolerance_x1000) * size;
}

void GroupScheduler::refresh_telemetry(
    const std::vector<std::int64_t>& block_ns) {
  const std::size_t n =
      std::min(block_ns.size(), prev_block_.size());
  for (std::size_t c = 0; c < n; ++c) {
    delta_block_[c] = block_ns[c] - prev_block_[c];
    prev_block_[c] = block_ns[c];
  }
}

}  // namespace nimcast::traffic
