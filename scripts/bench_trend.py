#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json artifacts into a markdown table.

Usage: bench_trend.py --current DIR --previous DIR [--threshold PCT]

Emits a GitHub-step-summary-friendly markdown table of per-metric deltas
(current vs previous), one row per (bench, point, metric). Simulation
metrics (latencies, throughputs in simulated time, FCT percentiles) are
machine-independent and compared raw. Wall-clock metrics (wall_ms,
events_per_sec) are normalized by the churn machine-speed probe recorded
in each run's BENCH_scale.json (machine_probe_events_per_sec) when both
sides carry one; otherwise they are compared raw and flagged.

Exit code is always 0: the trend is informational — the hard perf gate
lives in bench_scale --gate-baseline. Stdlib only.
"""

import argparse
import json
import pathlib
import sys

# metric name -> True when the metric is wall-clock (machine-dependent).
WALL_METRICS = {"wall_ms", "events_per_sec", "build_ms"}

# Per-bench: how to label a point and which metrics to trend.
BENCH_KEYS = {
    "scale": (("fabric", "hosts", "m"),
              ("wall_ms", "events_per_sec", "latency_us_mean")),
    "sharded": (("hosts", "shards", "threads"),
                ("wall_ms", "speedup")),
    "streaming_broadcast": (("rig", "rotation", "stream_packets"),
                            ("flits_per_us", "makespan_us", "p99_gap_us")),
    "traffic": (("rig", "ops_per_ms", "policy"),
                ("ops_per_sec", "flits_per_us", "fct_p50_us", "fct_p99_us")),
}


def load_benches(directory):
    """Maps bench name -> parsed JSON for every BENCH_*.json in directory."""
    found = {}
    root = pathlib.Path(directory)
    for path in sorted(root.rglob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"<!-- skipped {path}: {err} -->")
            continue
        name = doc.get("bench")
        if isinstance(name, str):
            found[name] = doc
    return found


def probe_of(benches):
    doc = benches.get("scale", {})
    probe = doc.get("machine_probe_events_per_sec")
    return float(probe) if isinstance(probe, (int, float)) and probe > 0 else None


def point_label(point, keys):
    return "/".join(str(point.get(k, "?")) for k in keys)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True)
    parser.add_argument("--previous", required=True)
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="flag rows whose |delta| exceeds this percent")
    parser.add_argument("--all", action="store_true",
                        help="print every comparison, not just flagged ones")
    args = parser.parse_args()

    cur_benches = load_benches(args.current)
    prev_benches = load_benches(args.previous)
    if not cur_benches or not prev_benches:
        print("### Bench trend\n")
        print("_No comparable bench artifacts on one side; skipping._")
        return 0

    cur_probe = probe_of(cur_benches)
    prev_probe = probe_of(prev_benches)
    normalize = cur_probe is not None and prev_probe is not None
    # Multiplying the previous run's wall-rate metrics by this ratio maps
    # them onto the current machine's speed; wall times divide instead.
    speed_ratio = (cur_probe / prev_probe) if normalize else 1.0

    rows = []
    for name, (keys, metrics) in BENCH_KEYS.items():
        cur_doc = cur_benches.get(name)
        prev_doc = prev_benches.get(name)
        if cur_doc is None or prev_doc is None:
            continue
        prev_points = {point_label(p, keys): p
                       for p in prev_doc.get("points", [])}
        for point in cur_doc.get("points", []):
            label = point_label(point, keys)
            prev_point = prev_points.get(label)
            if prev_point is None:
                continue
            for metric in metrics:
                cur_val = point.get(metric)
                prev_val = prev_point.get(metric)
                if not isinstance(cur_val, (int, float)) or \
                   not isinstance(prev_val, (int, float)):
                    continue
                adj_prev = prev_val
                if metric in WALL_METRICS and normalize:
                    if metric.endswith("_ms"):
                        adj_prev = prev_val / speed_ratio
                    else:
                        adj_prev = prev_val * speed_ratio
                if adj_prev == 0:
                    pct = 0.0 if cur_val == 0 else float("inf")
                else:
                    pct = 100.0 * (cur_val - adj_prev) / abs(adj_prev)
                rows.append((name, label, metric, adj_prev, cur_val, pct))

    print("### Bench trend vs previous main run\n")
    if normalize:
        print(f"_Wall-clock metrics normalized by churn probe ratio "
              f"{speed_ratio:.3f} (current/previous machine speed)._\n")
    else:
        print("_No machine probe on one side: wall-clock deltas are raw "
              "(may reflect runner speed, not code)._\n")

    if not rows:
        print("_No overlapping points between the two runs._")
        return 0

    flagged = [r for r in rows if abs(r[5]) > args.threshold]
    shown = rows if args.all or (not flagged and len(rows) <= 40) else flagged
    if shown:
        print("| bench | point | metric | previous | current | delta |")
        print("|---|---|---|---:|---:|---:|")
        for name, label, metric, adj_prev, cur_val, pct in shown:
            mark = " ⚠" if abs(pct) > args.threshold else ""
            print(f"| {name} | {label} | {metric} | {adj_prev:.3f} | "
                  f"{cur_val:.3f} | {pct:+.1f}%{mark} |")
        print()
    print(f"_{len(rows)} comparisons, {len(flagged)} beyond "
          f"±{args.threshold:.0f}%"
          f"{'' if shown is rows else ' (stable rows hidden)'}._")
    return 0


if __name__ == "__main__":
    sys.exit(main())
